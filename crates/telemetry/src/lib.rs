//! Lightweight observability for the Metis pipeline: timed spans with
//! parent/child nesting, a lock-free metrics registry (counters,
//! gauges, fixed-bucket histograms, bounded series), an event stream
//! for incidents, and JSON / Prometheus snapshot export.
//!
//! # Design constraints
//!
//! - **True no-op when disabled.** [`Telemetry::disabled`] carries no
//!   collector; every recording call is a single `Option` check, takes
//!   no clock reading, and allocates nothing. With the `capture`
//!   feature compiled out, [`Telemetry::enabled`] also returns the
//!   disabled handle.
//! - **Never perturbs results.** Recording is a write-only side
//!   channel: nothing in the pipeline reads telemetry state, so a run
//!   with telemetry on is bit-identical to one with it off.
//! - **Lock-free hot path.** Metric cells live in fixed-capacity
//!   open-addressed tables claimed via `OnceLock`; updates are relaxed
//!   atomics. Only span raw records and events take a (cold-path)
//!   mutex, and both logs are bounded — overflow is counted, not
//!   grown.
//!
//! # Example
//!
//! ```
//! use metis_telemetry::Telemetry;
//!
//! let tele = Telemetry::enabled();
//! {
//!     let _round = tele.span("alternation.round");
//!     tele.incr("lp.simplex.iterations");
//!     tele.push("taa.mu", 0.25);
//! }
//! if let Some(snapshot) = tele.snapshot() {
//!     assert_eq!(snapshot.counter("lp.simplex.iterations"), 1);
//!     assert!(snapshot.to_json().contains("taa.mu"));
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

mod metrics;
mod prometheus;
mod serve;
mod snapshot;
mod span;
mod trace;

use std::marker::PhantomData;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

pub use metrics::{bucket_index, BUCKET_COUNT, HISTOGRAM_BOUNDS, SERIES_CAPACITY};
pub use prometheus::{to_prometheus, validate_prometheus};
pub use serve::MetricsServer;
pub use snapshot::{
    CounterSnapshot, DroppedCounts, EventSnapshot, GaugeSnapshot, HistogramSnapshot,
    SeriesSnapshot, Snapshot, SpanSnapshot,
};
pub use trace::TraceSpan;

use metrics::Registry;
use span::{SpanCollector, SpanRecord};

/// Well-known metric and span names recorded by the workspace, so the
/// producers (core, lp glue, bench) and consumers (tests, reports)
/// cannot drift apart on spelling.
pub mod names {
    /// Counter: primal simplex iterations across all LP solves.
    pub const LP_SIMPLEX_ITERATIONS: &str = "lp.simplex.iterations";
    /// Counter: phase-1 (feasibility) simplex iterations.
    pub const LP_SIMPLEX_PHASE1: &str = "lp.simplex.phase1_iterations";
    /// Counter: dual simplex iterations (warm-start reoptimization).
    pub const LP_SIMPLEX_DUAL: &str = "lp.simplex.dual_iterations";
    /// Counter: bound-flip ratio-test outcomes.
    pub const LP_SIMPLEX_BOUND_FLIPS: &str = "lp.simplex.bound_flips";
    /// Counter: basis refactorizations.
    pub const LP_SIMPLEX_REFRESHES: &str = "lp.simplex.refactorizations";
    /// Counter: product-form eta updates between refactorizations
    /// (sparse LU backend).
    pub const LP_LU_ETA_UPDATES: &str = "lp.lu.eta_updates";
    /// Gauge: nonzeros in the `L` factor of the most recent sparse
    /// refactorization.
    pub const LP_LU_L_NNZ: &str = "lp.lu.l_nnz";
    /// Gauge: nonzeros in the `U` factor (diagonal included) of the most
    /// recent sparse refactorization.
    pub const LP_LU_U_NNZ: &str = "lp.lu.u_nnz";
    /// Counter: candidate blocks examined by partial pricing. Strictly
    /// a partial-pricing counter — full Dantzig, devex, and Bland
    /// sweeps contribute zero.
    pub const LP_PRICING_BLOCK_SCANS: &str = "lp.pricing.block_scans";
    /// Counter: devex reference-framework resets (weights grew past the
    /// guard and restarted at 1).
    pub const LP_PRICING_DEVEX_RESETS: &str = "lp.pricing.devex_resets";
    /// Counter: Forrest–Tomlin column updates applied in place to the
    /// `U` factor (sparse LU backend with the FT update strategy).
    pub const LP_LU_FT_SPIKES: &str = "lp.lu.ft_spikes";
    /// Counter: Harris ratio tests whose chosen exact ratio was negative
    /// and clamped to a zero-length step.
    pub const LP_RATIO_HARRIS_EXPANSIONS: &str = "lp.ratio.harris_expansions";
    /// Counter: equilibration sweeps performed before solves (scaling
    /// enabled via `SolveOptions::scale`).
    pub const LP_PRESOLVE_SCALING_PASSES: &str = "lp.presolve.scaling_passes";
    /// Counter: LP solves that reused a previous basis (warm starts).
    pub const LP_WARM_BASIS_REUSE: &str = "lp.warm.basis_reuse";
    /// Counter: LP solves started from scratch.
    pub const LP_COLD_SOLVES: &str = "lp.cold_solves";
    /// Counter: rows removed by presolve across all solves.
    pub const LP_PRESOLVE_ROWS: &str = "lp.presolve.removed_rows";
    /// Counter: variables removed by presolve across all solves.
    pub const LP_PRESOLVE_VARS: &str = "lp.presolve.removed_vars";
    /// Histogram: per-trial rounded profit (revenue − cost) in MAA.
    pub const MAA_TRIALS_PROFIT: &str = "maa.trials.profit";
    /// Series: μ scaling factor chosen by each TAA invocation.
    pub const TAA_MU: &str = "taa.mu";
    /// Series: initial pessimistic-estimator value `u_root` per TAA walk.
    pub const TAA_U_ROOT: &str = "taa.u_root";
    /// Histogram: wall-clock per alternation round, microseconds.
    pub const ROUND_DURATION_US: &str = "alternation.round.duration_us";
    /// Series: SP Updater's best profit after each round.
    pub const ROUND_PROFIT: &str = "alternation.round.profit";
    /// Counter: alternation rounds executed (including round 0).
    pub const ROUNDS: &str = "alternation.rounds";
    /// Counter: rounds whose solve failed even after retry.
    pub const INCIDENT_SOLVE_FAILED: &str = "incident.solve_failed";
    /// Counter: failed warm solves retried cold.
    pub const INCIDENT_WARM_RETRY: &str = "incident.warm_retry";
    /// Counter: online epochs skipped wholesale.
    pub const INCIDENT_EPOCH_SKIPPED: &str = "incident.epoch_skipped";
    /// Series: accepted requests per online epoch.
    pub const ONLINE_EPOCH_ACCEPTED: &str = "online.epoch.accepted";
    /// Series: cumulative profit after each online epoch.
    pub const ONLINE_EPOCH_PROFIT: &str = "online.epoch.profit";
    /// Event kind used for contained failures.
    pub const EVENT_INCIDENT: &str = "incident";
    /// Counter: individual invariant checks performed by solution audits.
    pub const AUDIT_CHECKS: &str = "audit.checks";
    /// Counter: audit checks that found a broken invariant.
    pub const AUDIT_VIOLATIONS: &str = "audit.violations";
    /// Event kind used for audit violations (one event per violation).
    pub const EVENT_AUDIT: &str = "audit.violation";
    /// Counter: HTTP requests served by the live metrics endpoint.
    pub const TELEMETRY_HTTP_REQUESTS: &str = "telemetry.http.requests";
    /// Counter: raw span records dropped once the bounded log filled.
    pub const TELEMETRY_SPANS_DROPPED: &str = "telemetry.spans.dropped";
    /// Counter: events dropped once the bounded event log filled.
    pub const TELEMETRY_EVENTS_DROPPED: &str = "telemetry.events.dropped";
    /// Series: accepted requests after each solver invocation
    /// (convergence trace; one point per MAA/TAA call).
    pub const TRACE_ACCEPTED: &str = "alternation.trace.accepted";
    /// Series: LP pivots spent by each solver invocation's relaxation
    /// (convergence trace; one point per MAA/TAA call).
    pub const TRACE_LP_ITERATIONS: &str = "alternation.trace.lp_iterations";
    /// Counter: convergence-trace entries dropped past the bound.
    pub const TRACE_ROUNDS_DROPPED: &str = "alternation.trace.dropped";
    /// Counter: per-iteration LP trace records kept (across solves).
    pub const LP_TRACE_RECORDS: &str = "lp.trace.records";
    /// Counter: per-iteration LP trace records dropped by the ring.
    pub const LP_TRACE_DROPPED: &str = "lp.trace.dropped";
    /// Span arg: LP pivots of the relaxation solved under the span.
    pub const ARG_LP_ITERATIONS: &str = "lp.iterations";

    /// Span: one whole offline Metis run.
    pub const SPAN_METIS: &str = "metis";
    /// Span: one alternation round (child of [`SPAN_METIS`]).
    pub const SPAN_ROUND: &str = "alternation.round";
    /// Span: MAA LP relaxation solve.
    pub const SPAN_MAA_RELAX: &str = "maa.relax";
    /// Span: MAA randomized rounding (all trials).
    pub const SPAN_MAA_ROUNDING: &str = "maa.rounding";
    /// Span: TAA LP relaxation solve.
    pub const SPAN_TAA_RELAX: &str = "taa.relax";
    /// Span: TAA derandomized decision-tree walk.
    pub const SPAN_TAA_WALK: &str = "taa.walk";
    /// Span: BW Limiter application.
    pub const SPAN_LIMITER: &str = "limiter.apply";
    /// Span: one whole online Metis run.
    pub const SPAN_ONLINE: &str = "online";
    /// Span: one online epoch (child of [`SPAN_ONLINE`]).
    pub const SPAN_EPOCH: &str = "online.epoch";
}

/// Event-log capacity; later events are counted as dropped.
const EVENT_CAPACITY: usize = 4_096;

/// An event pushed through [`Telemetry::event`].
struct Event {
    kind: &'static str,
    message: String,
}

/// The shared backing store of an enabled [`Telemetry`] handle.
struct Collector {
    registry: Registry,
    spans: SpanCollector,
    events: Mutex<Vec<Event>>,
    events_dropped: AtomicU64,
    /// Trace epoch: span start offsets are measured from here.
    epoch: Instant,
}

impl Collector {
    fn new() -> Self {
        Collector {
            registry: Registry::new(),
            spans: SpanCollector::new(),
            events: Mutex::new(Vec::new()),
            events_dropped: AtomicU64::new(0),
            epoch: Instant::now(),
        }
    }
}

/// A cloneable handle to a telemetry collector — or to nothing.
///
/// All recording methods are safe to call on a disabled handle; they
/// cost one branch and do nothing. Clones share the same collector, so
/// a handle can be passed down a pipeline and snapshotted at the top.
#[derive(Clone, Default)]
pub struct Telemetry {
    inner: Option<Arc<Collector>>,
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Telemetry")
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

impl Telemetry {
    /// A handle that records nothing. This is the hot-path default:
    /// every operation on it is a single `Option` check.
    pub fn disabled() -> Self {
        Telemetry { inner: None }
    }

    /// A handle backed by a fresh collector.
    ///
    /// With the `capture` feature compiled out this also returns the
    /// disabled handle, making instrumentation a guaranteed no-op.
    pub fn enabled() -> Self {
        #[cfg(feature = "capture")]
        {
            Telemetry {
                inner: Some(Arc::new(Collector::new())),
            }
        }
        #[cfg(not(feature = "capture"))]
        {
            Telemetry { inner: None }
        }
    }

    /// Whether this handle actually records.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// The backing collector, for in-crate exporters.
    pub(crate) fn collector(&self) -> Option<&Collector> {
        self.inner.as_deref()
    }

    /// Opens a timed span; it records itself when the guard drops.
    /// Guards must be dropped on the thread that opened them, in LIFO
    /// order (the guard is `!Send`, and lexical scoping gives LIFO for
    /// free).
    pub fn span(&self, name: &'static str) -> Span<'_> {
        let active = self.inner.as_deref().map(|c| {
            let (parent, depth) = c.spans.enter(name);
            ActiveSpan {
                collector: c,
                name,
                parent,
                depth,
                start: Instant::now(),
                args: Vec::new(),
            }
        });
        Span {
            active,
            _not_send: PhantomData,
        }
    }

    /// Adds `delta` to the counter `name`.
    pub fn add(&self, name: &'static str, delta: u64) {
        if let Some(c) = self.inner.as_deref() {
            if let Some(cell) = c.registry.counters.slot(name) {
                cell.add(delta);
            }
        }
    }

    /// Increments the counter `name` by one.
    pub fn incr(&self, name: &'static str) {
        self.add(name, 1);
    }

    /// Sets the gauge `name` to `value` (last write wins).
    pub fn gauge(&self, name: &'static str, value: f64) {
        if let Some(c) = self.inner.as_deref() {
            if let Some(cell) = c.registry.gauges.slot(name) {
                cell.set(value);
            }
        }
    }

    /// Observes `value` into the histogram `name`.
    pub fn observe(&self, name: &'static str, value: f64) {
        if let Some(c) = self.inner.as_deref() {
            if let Some(cell) = c.registry.histograms.slot(name) {
                cell.observe(value);
            }
        }
    }

    /// Appends `value` to the series `name`.
    pub fn push(&self, name: &'static str, value: f64) {
        if let Some(c) = self.inner.as_deref() {
            if let Some(cell) = c.registry.series.slot(name) {
                cell.push(value);
            }
        }
    }

    /// Pushes an event. The message closure only runs when enabled,
    /// so disabled handles never pay for formatting.
    pub fn event(&self, kind: &'static str, message: impl FnOnce() -> String) {
        if let Some(c) = self.inner.as_deref() {
            let mut events = match c.events.lock() {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            };
            if events.len() < EVENT_CAPACITY {
                events.push(Event {
                    kind,
                    message: message(),
                });
            } else {
                c.events_dropped.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Takes a consistent snapshot, or `None` for a disabled handle.
    pub fn snapshot(&self) -> Option<Snapshot> {
        let c = self.inner.as_deref()?;

        let mut counters: Vec<CounterSnapshot> = c
            .registry
            .counters
            .iter()
            .map(|(name, cell)| CounterSnapshot {
                name: name.to_string(),
                value: cell.get(),
            })
            .collect();
        // Surface buffer saturation as first-class counters (always
        // present, usually 0) so a truncated span log or event stream
        // is visible on /metrics instead of silently reading as
        // "covered everything". The names are reserved: the registry
        // has no slots for them, so they cannot collide with organic
        // counters.
        counters.push(CounterSnapshot {
            name: names::TELEMETRY_SPANS_DROPPED.to_string(),
            value: c.spans.dropped(),
        });
        counters.push(CounterSnapshot {
            name: names::TELEMETRY_EVENTS_DROPPED.to_string(),
            value: c.events_dropped.load(Ordering::Relaxed),
        });
        counters.sort_by(|a, b| a.name.cmp(&b.name));

        let mut gauges: Vec<GaugeSnapshot> = c
            .registry
            .gauges
            .iter()
            .map(|(name, cell)| GaugeSnapshot {
                name: name.to_string(),
                value: cell.get(),
            })
            .collect();
        gauges.sort_by(|a, b| a.name.cmp(&b.name));

        let mut histograms: Vec<HistogramSnapshot> = c
            .registry
            .histograms
            .iter()
            .map(|(name, cell)| {
                let (buckets, count, sum, min, max) = cell.read();
                HistogramSnapshot {
                    name: name.to_string(),
                    buckets,
                    count,
                    sum,
                    min,
                    max,
                }
            })
            .collect();
        histograms.sort_by(|a, b| a.name.cmp(&b.name));

        let mut series: Vec<SeriesSnapshot> = c
            .registry
            .series
            .iter()
            .map(|(name, cell)| {
                let (points, dropped) = cell.read();
                SeriesSnapshot {
                    name: name.to_string(),
                    points,
                    dropped,
                }
            })
            .collect();
        series.sort_by(|a, b| a.name.cmp(&b.name));

        // First-seen parent per span name, from the raw log.
        let records = c.spans.records();
        let mut spans: Vec<SpanSnapshot> = c
            .spans
            .aggregates
            .iter()
            .map(|(name, agg)| {
                let parent = records
                    .iter()
                    .find(|r| r.name == name)
                    .and_then(|r| r.parent)
                    .map(str::to_string);
                let count = agg.count.load(Ordering::Relaxed);
                SpanSnapshot {
                    name: name.to_string(),
                    parent,
                    count,
                    total_us: agg.total_us.load(Ordering::Relaxed),
                    min_us: if count == 0 {
                        0
                    } else {
                        agg.min_us.load(Ordering::Relaxed)
                    },
                    max_us: agg.max_us.load(Ordering::Relaxed),
                    max_depth: agg.max_depth.load(Ordering::Relaxed) as u32,
                }
            })
            .collect();
        spans.sort_by(|a, b| a.name.cmp(&b.name));

        let events: Vec<EventSnapshot> = {
            let guard = match c.events.lock() {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            };
            guard
                .iter()
                .enumerate()
                .map(|(i, e)| EventSnapshot {
                    seq: i as u64,
                    kind: e.kind.to_string(),
                    message: e.message.clone(),
                })
                .collect()
        };

        let dropped = DroppedCounts {
            metrics: c.registry.counters.overflow()
                + c.registry.gauges.overflow()
                + c.registry.histograms.overflow()
                + c.registry.series.overflow()
                + c.spans.aggregates.overflow(),
            span_records: c.spans.dropped(),
            events: c.events_dropped.load(Ordering::Relaxed),
        };

        Some(Snapshot {
            counters,
            gauges,
            histograms,
            series,
            spans,
            events,
            max_span_depth: c.spans.max_depth(),
            dropped,
        })
    }
}

/// An open span; borrows the handle that created it.
struct ActiveSpan<'t> {
    collector: &'t Collector,
    name: &'static str,
    parent: Option<&'static str>,
    depth: u32,
    start: Instant,
    args: Vec<(&'static str, f64)>,
}

/// RAII guard returned by [`Telemetry::span`]. Records the span when
/// dropped; `!Send` because nesting is tracked per thread.
pub struct Span<'t> {
    active: Option<ActiveSpan<'t>>,
    _not_send: PhantomData<*const ()>,
}

impl Span<'_> {
    /// Attaches a numeric argument to the span (e.g. the LP pivot
    /// count of the solve it timed). Arguments ride on the raw record
    /// into the Chrome trace export; aggregates ignore them. No-op on
    /// a disabled handle.
    pub fn arg(&mut self, name: &'static str, value: f64) {
        if let Some(a) = self.active.as_mut() {
            a.args.push((name, value));
        }
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        if let Some(a) = self.active.take() {
            let end = Instant::now();
            let duration_us = end.saturating_duration_since(a.start).as_micros() as u64;
            let start_us = a
                .start
                .saturating_duration_since(a.collector.epoch)
                .as_micros() as u64;
            a.collector.spans.exit(SpanRecord {
                name: a.name,
                parent: a.parent,
                depth: a.depth,
                lane: span::current_lane(),
                start_us,
                duration_us,
                args: a.args,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_records_nothing() {
        let t = Telemetry::disabled();
        assert!(!t.is_enabled());
        t.incr("c");
        t.gauge("g", 1.0);
        t.observe("h", 1.0);
        t.push("s", 1.0);
        t.event("e", || panic!("message closure must not run when disabled"));
        let _span = t.span("root");
        assert!(t.snapshot().is_none());
    }

    #[cfg(feature = "capture")]
    #[test]
    fn enabled_handle_collects_everything() {
        let t = Telemetry::enabled();
        {
            let _outer = t.span(names::SPAN_METIS);
            let _inner = t.span(names::SPAN_ROUND);
            t.add(names::LP_SIMPLEX_ITERATIONS, 42);
            t.gauge(names::TAA_MU, 0.25);
            t.observe(names::ROUND_DURATION_US, 1500.0);
            t.push(names::TAA_U_ROOT, 12.5);
            t.event(names::EVENT_INCIDENT, || "round 1: warm retry".to_string());
        }
        let s = t.snapshot().expect("enabled");
        assert_eq!(s.counter(names::LP_SIMPLEX_ITERATIONS), 42);
        assert_eq!(s.gauge(names::TAA_MU), Some(0.25));
        assert_eq!(
            s.histogram(names::ROUND_DURATION_US).map(|h| h.count),
            Some(1)
        );
        assert_eq!(
            s.series(names::TAA_U_ROOT).map(|x| x.points.clone()),
            Some(vec![12.5])
        );
        assert_eq!(s.max_span_depth, 2);
        let round = s.span(names::SPAN_ROUND).expect("round span");
        assert_eq!(round.parent.as_deref(), Some(names::SPAN_METIS));
        assert_eq!(s.events.len(), 1);
        assert!(s.events[0].message.contains("warm retry"));
        assert_eq!(s.dropped, DroppedCounts::default());
    }

    #[cfg(feature = "capture")]
    #[test]
    fn clones_share_one_collector() {
        let t = Telemetry::enabled();
        let u = t.clone();
        t.incr("shared");
        u.incr("shared");
        assert_eq!(t.snapshot().expect("enabled").counter("shared"), 2);
    }

    #[cfg(feature = "capture")]
    #[test]
    fn snapshot_roundtrips_through_exports() {
        let t = Telemetry::enabled();
        t.incr("a.count");
        t.observe("a.hist", 3.0);
        t.push("a.series", 1.0);
        {
            let _s = t.span("a.span");
        }
        t.event("incident", || "msg".to_string());
        let snap = t.snapshot().expect("enabled");
        let json = snap.to_json();
        assert!(json.contains("a.hist"));
        let prom = to_prometheus(&snap);
        validate_prometheus(&prom).expect("exported text is valid");
        assert!(prom.contains("metis_a_count"));
        assert!(prom.contains("metis_a_hist_bucket{le=\"+Inf\"}"));
        assert!(prom.contains("metis_span_calls_total{span=\"a.span\"}"));
    }

    #[cfg(not(feature = "capture"))]
    #[test]
    fn enabled_is_noop_without_capture_feature() {
        let t = Telemetry::enabled();
        assert!(!t.is_enabled());
        t.incr("c");
        assert!(t.snapshot().is_none());
    }
}
