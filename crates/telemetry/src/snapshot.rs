//! Immutable snapshots of a collector and their JSON rendering.
//!
//! Snapshots are fully ordered (every list is sorted by name; series
//! and events keep insertion order) so that two runs recording the
//! same values render byte-identical JSON. The JSON writer is local to
//! this crate — the workspace vendors no `serde_json` — and emits only
//! finite numbers (`NaN`/`±Inf` become `null`).

use crate::metrics::{HISTOGRAM_BOUNDS, SERIES_CAPACITY};

/// A counter's final value.
#[derive(Clone, Debug, PartialEq)]
pub struct CounterSnapshot {
    /// Metric name (dotted, e.g. `lp.simplex.iterations`).
    pub name: String,
    /// Accumulated value.
    pub value: u64,
}

/// A gauge's last-written value.
#[derive(Clone, Debug, PartialEq)]
pub struct GaugeSnapshot {
    /// Metric name.
    pub name: String,
    /// Last value set.
    pub value: f64,
}

/// A histogram's buckets and summary statistics.
#[derive(Clone, Debug, PartialEq)]
pub struct HistogramSnapshot {
    /// Metric name.
    pub name: String,
    /// Per-bucket observation counts over
    /// [`HISTOGRAM_BOUNDS`](crate::HISTOGRAM_BOUNDS) plus the final
    /// `+Inf` bucket (always [`BUCKET_COUNT`](crate::BUCKET_COUNT)
    /// entries, zeros included, so the schema is stable).
    pub buckets: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: f64,
    /// Smallest observed value (0 when empty).
    pub min: f64,
    /// Largest observed value (0 when empty).
    pub max: f64,
}

/// An ordered series of recorded points.
#[derive(Clone, Debug, PartialEq)]
pub struct SeriesSnapshot {
    /// Metric name.
    pub name: String,
    /// Recorded points in insertion order (capped at
    /// [`SERIES_CAPACITY`](crate::SERIES_CAPACITY)).
    pub points: Vec<f64>,
    /// Points dropped after the cap was hit.
    pub dropped: u64,
}

/// Aggregate of all finished spans sharing a name.
#[derive(Clone, Debug, PartialEq)]
pub struct SpanSnapshot {
    /// Span name (dotted, e.g. `maa.rounding`).
    pub name: String,
    /// Parent span name of the first recorded occurrence, if nested.
    pub parent: Option<String>,
    /// Finished occurrences.
    pub count: u64,
    /// Total time across occurrences, microseconds.
    pub total_us: u64,
    /// Shortest occurrence, microseconds (0 when empty).
    pub min_us: u64,
    /// Longest occurrence, microseconds.
    pub max_us: u64,
    /// Deepest nesting any occurrence was recorded at (root = 1).
    pub max_depth: u32,
}

/// One event pushed through the collector (e.g. an incident).
#[derive(Clone, Debug, PartialEq)]
pub struct EventSnapshot {
    /// Insertion index, starting at 0.
    pub seq: u64,
    /// Event kind (e.g. `incident`).
    pub kind: String,
    /// Human-readable message.
    pub message: String,
}

/// How much recording the bounded collector had to drop.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DroppedCounts {
    /// Metric recordings that found their table full.
    pub metrics: u64,
    /// Raw span records beyond the log capacity.
    pub span_records: u64,
    /// Events beyond the event-log capacity.
    pub events: u64,
}

/// A consistent copy of everything a [`Telemetry`](crate::Telemetry)
/// handle collected.
#[derive(Clone, Debug, PartialEq)]
pub struct Snapshot {
    /// Counters, sorted by name.
    pub counters: Vec<CounterSnapshot>,
    /// Gauges, sorted by name.
    pub gauges: Vec<GaugeSnapshot>,
    /// Histograms, sorted by name.
    pub histograms: Vec<HistogramSnapshot>,
    /// Series, sorted by name.
    pub series: Vec<SeriesSnapshot>,
    /// Span aggregates, sorted by name.
    pub spans: Vec<SpanSnapshot>,
    /// Events in insertion order.
    pub events: Vec<EventSnapshot>,
    /// Deepest span nesting observed anywhere.
    pub max_span_depth: u32,
    /// What the bounded collector dropped.
    pub dropped: DroppedCounts,
}

impl Snapshot {
    /// Looks up a counter value (0 when never recorded).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|c| c.name == name)
            .map_or(0, |c| c.value)
    }

    /// Looks up a gauge value.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|g| g.name == name).map(|g| g.value)
    }

    /// Looks up a histogram.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|h| h.name == name)
    }

    /// Looks up a series.
    pub fn series(&self, name: &str) -> Option<&SeriesSnapshot> {
        self.series.iter().find(|s| s.name == name)
    }

    /// Looks up a span aggregate.
    pub fn span(&self, name: &str) -> Option<&SpanSnapshot> {
        self.spans.iter().find(|s| s.name == name)
    }

    /// Total wall-clock seconds spent in spans named `name`.
    pub fn span_secs(&self, name: &str) -> f64 {
        self.span(name).map_or(0.0, |s| s.total_us as f64 / 1e6)
    }

    /// Renders the snapshot as pretty-printed JSON.
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        self.write_json(&mut w, false);
        w.finish()
    }

    /// Renders only the snapshot's *shape*: identical to [`to_json`]
    /// except every number is replaced by `0`, and per-run quantities
    /// whose lengths vary (series points, event sequence) keep their
    /// structure. Two runs of the same deterministic configuration
    /// produce identical schema JSON even though timings differ —
    /// this is what the golden-fixture test pins.
    ///
    /// [`to_json`]: Snapshot::to_json
    pub fn schema_json(&self) -> String {
        let mut w = JsonWriter::new();
        self.write_json(&mut w, true);
        w.finish()
    }

    fn write_json(&self, w: &mut JsonWriter, schema: bool) {
        w.open_obj();
        w.key("version");
        w.num_u64(if schema { 0 } else { 1 }, false);
        // `schema` zeroes every numeric leaf so the golden fixture pins
        // structure, not timing; `version` is zeroed for uniformity.
        w.key("bucket_bounds");
        w.open_arr();
        for b in HISTOGRAM_BOUNDS {
            w.num_f64(b, schema);
        }
        w.close_arr();
        w.key("series_capacity");
        w.num_u64(SERIES_CAPACITY as u64, schema);

        w.key("counters");
        w.open_obj();
        for c in &self.counters {
            w.key(&c.name);
            w.num_u64(c.value, schema);
        }
        w.close_obj();

        w.key("gauges");
        w.open_obj();
        for g in &self.gauges {
            w.key(&g.name);
            w.num_f64(g.value, schema);
        }
        w.close_obj();

        w.key("histograms");
        w.open_obj();
        for h in &self.histograms {
            w.key(&h.name);
            w.open_obj();
            w.key("count");
            w.num_u64(h.count, schema);
            w.key("sum");
            w.num_f64(h.sum, schema);
            w.key("min");
            w.num_f64(h.min, schema);
            w.key("max");
            w.num_f64(h.max, schema);
            w.key("buckets");
            w.open_arr();
            for &b in &h.buckets {
                w.num_u64(b, schema);
            }
            w.close_arr();
            w.close_obj();
        }
        w.close_obj();

        w.key("series");
        w.open_obj();
        for s in &self.series {
            w.key(&s.name);
            w.open_obj();
            w.key("dropped");
            w.num_u64(s.dropped, schema);
            w.key("points");
            w.open_arr();
            for &p in &s.points {
                w.num_f64(p, schema);
            }
            w.close_arr();
            w.close_obj();
        }
        w.close_obj();

        w.key("spans");
        w.open_obj();
        for s in &self.spans {
            w.key(&s.name);
            w.open_obj();
            w.key("parent");
            match &s.parent {
                Some(p) => w.str(p),
                None => w.null(),
            }
            w.key("count");
            w.num_u64(s.count, schema);
            w.key("total_us");
            w.num_u64(s.total_us, schema);
            w.key("min_us");
            w.num_u64(s.min_us, schema);
            w.key("max_us");
            w.num_u64(s.max_us, schema);
            w.key("max_depth");
            w.num_u64(u64::from(s.max_depth), schema);
            w.close_obj();
        }
        w.close_obj();

        w.key("events");
        w.open_arr();
        for e in &self.events {
            w.open_obj();
            w.key("seq");
            w.num_u64(e.seq, schema);
            w.key("kind");
            w.str(&e.kind);
            w.key("message");
            w.str(&e.message);
            w.close_obj();
        }
        w.close_arr();

        w.key("max_span_depth");
        w.num_u64(u64::from(self.max_span_depth), schema);

        w.key("dropped");
        w.open_obj();
        w.key("metrics");
        w.num_u64(self.dropped.metrics, schema);
        w.key("span_records");
        w.num_u64(self.dropped.span_records, schema);
        w.key("events");
        w.num_u64(self.dropped.events, schema);
        w.close_obj();

        w.close_obj();
    }
}

/// Minimal pretty-printing JSON writer (objects, arrays, strings,
/// numbers, null). Keys are written in the order given; callers are
/// responsible for sorting. Shared with the Chrome-trace exporter.
pub(crate) struct JsonWriter {
    out: String,
    indent: usize,
    /// Whether the current container already holds an element.
    has_item: Vec<bool>,
    /// Set after `key()`, cleared by the value that follows it.
    pending_value: bool,
}

impl JsonWriter {
    pub(crate) fn new() -> Self {
        JsonWriter {
            out: String::new(),
            indent: 0,
            has_item: Vec::new(),
            pending_value: false,
        }
    }

    pub(crate) fn finish(mut self) -> String {
        self.out.push('\n');
        self.out
    }

    fn before_value(&mut self) {
        if self.pending_value {
            self.pending_value = false;
            return;
        }
        if let Some(has) = self.has_item.last_mut() {
            if *has {
                self.out.push(',');
            }
            *has = true;
            self.newline_indent();
        }
    }

    fn newline_indent(&mut self) {
        self.out.push('\n');
        for _ in 0..self.indent {
            self.out.push_str("  ");
        }
    }

    pub(crate) fn open_obj(&mut self) {
        self.before_value();
        self.out.push('{');
        self.indent += 1;
        self.has_item.push(false);
    }

    pub(crate) fn close_obj(&mut self) {
        self.indent -= 1;
        let had = self.has_item.pop().unwrap_or(false);
        if had {
            self.newline_indent();
        }
        self.out.push('}');
    }

    pub(crate) fn open_arr(&mut self) {
        self.before_value();
        self.out.push('[');
        self.indent += 1;
        self.has_item.push(false);
    }

    pub(crate) fn close_arr(&mut self) {
        self.indent -= 1;
        let had = self.has_item.pop().unwrap_or(false);
        if had {
            self.newline_indent();
        }
        self.out.push(']');
    }

    pub(crate) fn key(&mut self, k: &str) {
        if let Some(has) = self.has_item.last_mut() {
            if *has {
                self.out.push(',');
            }
            *has = true;
        }
        self.newline_indent();
        self.push_escaped(k);
        self.out.push_str(": ");
        self.pending_value = true;
    }

    pub(crate) fn str(&mut self, s: &str) {
        self.before_value();
        self.push_escaped(s);
    }

    pub(crate) fn null(&mut self) {
        self.before_value();
        self.out.push_str("null");
    }

    pub(crate) fn num_u64(&mut self, v: u64, schema: bool) {
        self.before_value();
        if schema {
            self.out.push('0');
        } else {
            self.out.push_str(&v.to_string());
        }
    }

    pub(crate) fn num_f64(&mut self, v: f64, schema: bool) {
        self.before_value();
        if schema {
            self.out.push('0');
        } else if v.is_finite() {
            self.out.push_str(&format_f64(v));
        } else {
            self.out.push_str("null");
        }
    }

    fn push_escaped(&mut self, s: &str) {
        self.out.push('"');
        for ch in s.chars() {
            match ch {
                '"' => self.out.push_str("\\\""),
                '\\' => self.out.push_str("\\\\"),
                '\n' => self.out.push_str("\\n"),
                '\r' => self.out.push_str("\\r"),
                '\t' => self.out.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    self.out.push_str(&format!("\\u{:04x}", c as u32));
                }
                c => self.out.push(c),
            }
        }
        self.out.push('"');
    }
}

/// Shortest-roundtrip decimal for `v`, with an explicit `.0` for
/// integral values so the token stays typed as a float.
pub(crate) fn format_f64(v: f64) -> String {
    let s = format!("{v}");
    if s.contains(['.', 'e', 'E']) {
        s
    } else {
        format!("{s}.0")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Snapshot {
        Snapshot {
            counters: vec![CounterSnapshot {
                name: "a.b".into(),
                value: 3,
            }],
            gauges: vec![GaugeSnapshot {
                name: "g".into(),
                value: 1.5,
            }],
            histograms: Vec::new(),
            series: vec![SeriesSnapshot {
                name: "s".into(),
                points: vec![1.0, 2.0],
                dropped: 0,
            }],
            spans: vec![SpanSnapshot {
                name: "root".into(),
                parent: None,
                count: 1,
                total_us: 10,
                min_us: 10,
                max_us: 10,
                max_depth: 1,
            }],
            events: vec![EventSnapshot {
                seq: 0,
                kind: "incident".into(),
                message: "round 1: \"quoted\"".into(),
            }],
            max_span_depth: 1,
            dropped: DroppedCounts::default(),
        }
    }

    #[test]
    fn json_is_well_formed_and_contains_names() {
        let j = tiny().to_json();
        assert!(j.starts_with('{'));
        assert!(j.ends_with("}\n"));
        assert!(j.contains("\"a.b\": 3"));
        assert!(j.contains("\"g\": 1.5"));
        assert!(j.contains("\\\"quoted\\\""));
        assert_eq!(
            j.matches('{').count(),
            j.matches('}').count(),
            "balanced braces"
        );
        assert_eq!(j.matches('[').count(), j.matches(']').count());
    }

    #[test]
    fn schema_json_zeroes_values_but_keeps_structure() {
        let a = tiny();
        let mut b = tiny();
        b.counters[0].value = 999;
        b.gauges[0].value = -7.25;
        b.spans[0].total_us = 123_456;
        assert_eq!(a.schema_json(), b.schema_json());
        assert_ne!(a.to_json(), b.to_json());
        assert!(a.schema_json().contains("\"a.b\": 0"));
    }

    #[test]
    fn format_f64_keeps_float_tokens() {
        assert_eq!(format_f64(1.0), "1.0");
        assert_eq!(format_f64(0.5), "0.5");
        assert_eq!(format_f64(-3.0), "-3.0");
        assert_eq!(format_f64(1e-9), "0.000000001");
        assert_eq!(format_f64(1e25), "10000000000000000000000000.0");
    }
}
