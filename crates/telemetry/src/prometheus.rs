//! Prometheus text exposition (format 0.0.4) rendering and a
//! `promtool`-style line-format validator.
//!
//! The validator exists so CI can smoke-check exported text without an
//! external binary: it enforces metric/label name grammar, sample
//! value syntax, `TYPE`/`HELP` comment shape, and histogram-specific
//! invariants (cumulative `le` buckets, `+Inf` bucket equal to
//! `_count`).

use std::collections::BTreeMap;

use crate::metrics::HISTOGRAM_BOUNDS;
use crate::snapshot::{format_f64, Snapshot};

/// Prefix applied to every exported family name.
const PREFIX: &str = "metis_";

/// Maps a dotted metric name onto the Prometheus name grammar
/// (`[a-zA-Z_:][a-zA-Z0-9_:]*`), prefixing `metis_`.
fn family(name: &str) -> String {
    let mut out = String::with_capacity(PREFIX.len() + name.len());
    out.push_str(PREFIX);
    // The prefix guarantees a valid first character, so every name
    // character only needs the continuation grammar — leading digits
    // survive (`9lives` → `metis_9lives`); anything else maps to `_`.
    for ch in name.chars() {
        if ch.is_ascii_alphanumeric() || ch == '_' || ch == ':' {
            out.push(ch);
        } else {
            out.push('_');
        }
    }
    out
}

/// Escapes a label value per the exposition format.
fn label_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for ch in v.chars() {
        match ch {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Renders a snapshot in the Prometheus text exposition format.
///
/// Counters and gauges map directly; histograms emit cumulative
/// `_bucket{le=...}` samples plus `_sum`/`_count`; each series emits
/// its last value as a gauge plus a point-count counter; span
/// aggregates emit `metis_span_calls_total` / `metis_span_us_total`
/// labelled by span name; events aggregate into
/// `metis_events_total{kind=...}`.
pub fn to_prometheus(snapshot: &Snapshot) -> String {
    let mut out = String::new();

    for c in &snapshot.counters {
        let f = family(&c.name);
        out.push_str(&format!("# TYPE {f} counter\n{f} {}\n", c.value));
    }

    for g in &snapshot.gauges {
        let f = family(&g.name);
        out.push_str(&format!("# TYPE {f} gauge\n{f} {}\n", format_f64(g.value)));
    }

    for h in &snapshot.histograms {
        let f = family(&h.name);
        out.push_str(&format!("# TYPE {f} histogram\n"));
        let mut cumulative = 0u64;
        for (i, &bucket) in h.buckets.iter().enumerate() {
            cumulative += bucket;
            let le = HISTOGRAM_BOUNDS
                .get(i)
                .map_or_else(|| "+Inf".to_string(), |b| format_f64(*b));
            out.push_str(&format!("{f}_bucket{{le=\"{le}\"}} {cumulative}\n"));
        }
        out.push_str(&format!("{f}_sum {}\n", format_f64(h.sum)));
        out.push_str(&format!("{f}_count {}\n", h.count));
    }

    for s in &snapshot.series {
        let f = family(&s.name);
        if let Some(last) = s.points.last() {
            out.push_str(&format!(
                "# TYPE {f}_last gauge\n{f}_last {}\n",
                format_f64(*last)
            ));
        }
        let total = s.points.len() as u64 + s.dropped;
        out.push_str(&format!(
            "# TYPE {f}_points_total counter\n{f}_points_total {total}\n"
        ));
    }

    if !snapshot.spans.is_empty() {
        out.push_str("# TYPE metis_span_calls_total counter\n");
        for s in &snapshot.spans {
            out.push_str(&format!(
                "metis_span_calls_total{{span=\"{}\"}} {}\n",
                label_value(&s.name),
                s.count
            ));
        }
        out.push_str("# TYPE metis_span_us_total counter\n");
        for s in &snapshot.spans {
            out.push_str(&format!(
                "metis_span_us_total{{span=\"{}\"}} {}\n",
                label_value(&s.name),
                s.total_us
            ));
        }
    }

    if !snapshot.events.is_empty() {
        let mut by_kind: BTreeMap<&str, u64> = BTreeMap::new();
        for e in &snapshot.events {
            *by_kind.entry(e.kind.as_str()).or_insert(0) += 1;
        }
        out.push_str("# TYPE metis_events_total counter\n");
        for (kind, n) in by_kind {
            out.push_str(&format!(
                "metis_events_total{{kind=\"{}\"}} {n}\n",
                label_value(kind)
            ));
        }
    }

    out
}

fn is_name_start(c: char) -> bool {
    c.is_ascii_alphabetic() || c == '_' || c == ':'
}

fn is_name_char(c: char) -> bool {
    is_name_start(c) || c.is_ascii_digit()
}

fn is_label_start(c: char) -> bool {
    c.is_ascii_alphabetic() || c == '_'
}

fn is_label_char(c: char) -> bool {
    is_label_start(c) || c.is_ascii_digit()
}

/// One parsed sample line.
struct Sample {
    name: String,
    labels: Vec<(String, String)>,
    value: f64,
}

fn parse_sample(line: &str, lineno: usize) -> Result<Sample, String> {
    let err = |msg: &str| format!("line {lineno}: {msg}: {line:?}");
    let bytes: Vec<char> = line.chars().collect();
    let mut i = 0;

    if bytes.is_empty() || !is_name_start(bytes[0]) {
        return Err(err("sample must start with a metric name"));
    }
    while i < bytes.len() && is_name_char(bytes[i]) {
        i += 1;
    }
    let name: String = bytes[..i].iter().collect();

    let mut labels = Vec::new();
    if i < bytes.len() && bytes[i] == '{' {
        i += 1;
        loop {
            if i >= bytes.len() {
                return Err(err("unterminated label set"));
            }
            if bytes[i] == '}' {
                i += 1;
                break;
            }
            if !is_label_start(bytes[i]) {
                return Err(err("bad label name"));
            }
            let lstart = i;
            while i < bytes.len() && is_label_char(bytes[i]) {
                i += 1;
            }
            let lname: String = bytes[lstart..i].iter().collect();
            if i >= bytes.len() || bytes[i] != '=' {
                return Err(err("label missing '='"));
            }
            i += 1;
            if i >= bytes.len() || bytes[i] != '"' {
                return Err(err("label value missing opening quote"));
            }
            i += 1;
            let mut value = String::new();
            loop {
                if i >= bytes.len() {
                    return Err(err("unterminated label value"));
                }
                match bytes[i] {
                    '"' => {
                        i += 1;
                        break;
                    }
                    '\\' => {
                        i += 1;
                        match bytes.get(i) {
                            Some('\\') => value.push('\\'),
                            Some('"') => value.push('"'),
                            Some('n') => value.push('\n'),
                            _ => return Err(err("bad escape in label value")),
                        }
                        i += 1;
                    }
                    c => {
                        value.push(c);
                        i += 1;
                    }
                }
            }
            labels.push((lname, value));
            if i < bytes.len() && bytes[i] == ',' {
                i += 1;
            }
        }
    }

    if i >= bytes.len() || bytes[i] != ' ' {
        return Err(err("expected single space before value"));
    }
    i += 1;
    let rest: String = bytes[i..].iter().collect();
    let mut parts = rest.split(' ');
    let value_tok = parts.next().unwrap_or("");
    let value = match value_tok {
        "+Inf" => f64::INFINITY,
        "-Inf" => f64::NEG_INFINITY,
        "NaN" => f64::NAN,
        t => t
            .parse::<f64>()
            .map_err(|_| err("value is not a valid float"))?,
    };
    // An optional integer timestamp may follow the value.
    if let Some(ts) = parts.next() {
        if ts.parse::<i64>().is_err() {
            return Err(err("trailing token is not a timestamp"));
        }
        if parts.next().is_some() {
            return Err(err("too many tokens"));
        }
    }
    Ok(Sample {
        name,
        labels,
        value,
    })
}

/// Validates Prometheus text exposition format, `promtool check
/// metrics`-style, without any external binary.
///
/// Enforces, per line: metric/label name grammar, label value escaping,
/// float syntax (`+Inf`/`-Inf`/`NaN` accepted), and `# TYPE`/`# HELP`
/// comment shape. Across lines: at most one `TYPE` per family, samples
/// of a `histogram` family restricted to `_bucket`/`_sum`/`_count`
/// suffixes, cumulative non-decreasing `le` buckets, and the `+Inf`
/// bucket present and equal to `_count`.
///
/// # Errors
///
/// Returns a message naming the first offending line.
pub fn validate_prometheus(text: &str) -> Result<(), String> {
    let mut types: BTreeMap<String, String> = BTreeMap::new();
    // family -> (buckets in order of appearance, count sample)
    let mut hist_buckets: BTreeMap<String, Vec<(String, f64)>> = BTreeMap::new();
    let mut hist_counts: BTreeMap<String, f64> = BTreeMap::new();

    for (n, line) in text.lines().enumerate() {
        let lineno = n + 1;
        if line.is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix('#') {
            let comment = comment.trim_start();
            if let Some(rest) = comment.strip_prefix("TYPE ") {
                let mut it = rest.splitn(2, ' ');
                let fam = it.next().unwrap_or("");
                let kind = it.next().unwrap_or("");
                if fam.is_empty()
                    || !fam.chars().enumerate().all(|(i, c)| {
                        if i == 0 {
                            is_name_start(c)
                        } else {
                            is_name_char(c)
                        }
                    })
                {
                    return Err(format!("line {lineno}: bad family name in TYPE"));
                }
                if !matches!(
                    kind,
                    "counter" | "gauge" | "histogram" | "summary" | "untyped"
                ) {
                    return Err(format!("line {lineno}: unknown metric type {kind:?}"));
                }
                if types.insert(fam.to_string(), kind.to_string()).is_some() {
                    return Err(format!("line {lineno}: duplicate TYPE for {fam}"));
                }
            }
            // HELP and free comments are allowed without further checks.
            continue;
        }

        let sample = parse_sample(line, lineno)?;
        // Histogram family bookkeeping.
        let base = sample
            .name
            .strip_suffix("_bucket")
            .or_else(|| sample.name.strip_suffix("_sum"))
            .or_else(|| sample.name.strip_suffix("_count"))
            .unwrap_or(&sample.name);
        if types.get(base).map(String::as_str) == Some("histogram") {
            if sample.name.ends_with("_bucket") {
                let le = sample
                    .labels
                    .iter()
                    .find(|(k, _)| k == "le")
                    .map(|(_, v)| v.clone())
                    .ok_or_else(|| format!("line {lineno}: histogram bucket without le label"))?;
                hist_buckets
                    .entry(base.to_string())
                    .or_default()
                    .push((le, sample.value));
            } else if sample.name.ends_with("_count") {
                hist_counts.insert(base.to_string(), sample.value);
            } else if !sample.name.ends_with("_sum") {
                return Err(format!(
                    "line {lineno}: sample {} does not match histogram family {base}",
                    sample.name
                ));
            }
        }
    }

    for (fam, buckets) in &hist_buckets {
        let mut prev = f64::NEG_INFINITY;
        let mut inf_value = None;
        for (le, v) in buckets {
            if *v < prev {
                return Err(format!("histogram {fam}: bucket counts not cumulative"));
            }
            prev = *v;
            if le == "+Inf" {
                inf_value = Some(*v);
            } else if le.parse::<f64>().is_err() {
                return Err(format!("histogram {fam}: bad le value {le:?}"));
            }
        }
        let inf = inf_value.ok_or_else(|| format!("histogram {fam}: missing +Inf bucket"))?;
        if let Some(count) = hist_counts.get(fam) {
            if (inf - count).abs() > 0.0 {
                return Err(format!("histogram {fam}: +Inf bucket != _count"));
            }
        } else {
            return Err(format!("histogram {fam}: missing _count sample"));
        }
    }

    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn family_sanitizes_names() {
        assert_eq!(
            family("lp.simplex.iterations"),
            "metis_lp_simplex_iterations"
        );
        // Leading digits are legal after the `metis_` prefix.
        assert_eq!(family("9lives"), "metis_9lives");
        assert_eq!(family("a-b c/d"), "metis_a_b_c_d");
        assert_eq!(family("café.λ"), "metis_caf___");
        assert_eq!(family(""), "metis_");
    }

    #[test]
    fn hostile_names_and_labels_export_validly() {
        use crate::snapshot::{
            CounterSnapshot, DroppedCounts, EventSnapshot, SeriesSnapshot, Snapshot, SpanSnapshot,
        };
        let snap = Snapshot {
            counters: vec![CounterSnapshot {
                name: "9lives of-the.café".into(),
                value: 3,
            }],
            gauges: Vec::new(),
            histograms: Vec::new(),
            series: vec![SeriesSnapshot {
                name: "söries/points".into(),
                points: vec![1.5],
                dropped: 2,
            }],
            spans: vec![SpanSnapshot {
                name: "span \"with\" quotes\\and\nnewline".into(),
                parent: None,
                count: 1,
                total_us: 5,
                min_us: 5,
                max_us: 5,
                max_depth: 1,
            }],
            events: vec![EventSnapshot {
                seq: 0,
                kind: "kind\"quoted\"".into(),
                message: "m".into(),
            }],
            max_span_depth: 1,
            dropped: DroppedCounts::default(),
        };
        let text = to_prometheus(&snap);
        validate_prometheus(&text).expect("hostile names must still export valid text");
        assert!(text.contains("metis_9lives_of_the_caf_ 3"));
        assert!(text.contains("metis_s_ries_points_points_total 3"));
        // Quotes, backslashes, and newlines in label values are escaped.
        assert!(text.contains("span=\"span \\\"with\\\" quotes\\\\and\\nnewline\""));
        assert!(text.contains("kind=\"kind\\\"quoted\\\"\""));
    }

    #[test]
    fn valid_text_passes() {
        let text = "\
# TYPE metis_rounds counter
metis_rounds 6
# TYPE metis_mu gauge
metis_mu 0.25
# TYPE metis_dur histogram
metis_dur_bucket{le=\"1.0\"} 2
metis_dur_bucket{le=\"+Inf\"} 3
metis_dur_sum 4.5
metis_dur_count 3
metis_span_calls_total{span=\"maa.rounding\"} 6 1700000000
";
        validate_prometheus(text).unwrap();
    }

    #[test]
    fn rejects_bad_lines() {
        assert!(validate_prometheus("1bad_name 3\n").is_err());
        assert!(validate_prometheus("name{l=\"unterminated} 3\n").is_err());
        assert!(validate_prometheus("name notafloat\n").is_err());
        assert!(validate_prometheus("# TYPE fam flavor\n").is_err());
        let noninf = "# TYPE h histogram\nh_bucket{le=\"1.0\"} 2\nh_sum 1\nh_count 2\n";
        assert!(validate_prometheus(noninf).unwrap_err().contains("+Inf"));
        let shrinking =
            "# TYPE h histogram\nh_bucket{le=\"1.0\"} 2\nh_bucket{le=\"+Inf\"} 1\nh_sum 1\nh_count 1\n";
        assert!(validate_prometheus(shrinking)
            .unwrap_err()
            .contains("cumulative"));
        // Bad escape inside a label value.
        assert!(validate_prometheus("name{l=\"a\\t\"} 1\n").is_err());
        // Label names must not start with a digit.
        assert!(validate_prometheus("name{9l=\"v\"} 1\n").is_err());
        // Duplicate TYPE for one family.
        assert!(validate_prometheus("# TYPE f counter\n# TYPE f gauge\nf 1\n").is_err());
        // A histogram family only admits _bucket/_sum/_count samples.
        assert!(validate_prometheus(
            "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 1\nh_count 1\nh 2\n"
        )
        .is_err());
        // Unsanitized dotted/unicode names are rejected, proving the
        // validator would catch a family() regression.
        assert!(validate_prometheus("metis_a.b 1\n").is_err());
        assert!(validate_prometheus("metis_café 1\n").is_err());
    }
}
