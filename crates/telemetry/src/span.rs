//! Timed spans with parent/child nesting.
//!
//! A [`Span`](crate::Span) is an RAII guard: it notes the monotonic
//! start time when created and records its duration when dropped.
//! Nesting is tracked per thread (spans must be dropped on the thread
//! that opened them — the guard is `!Send` to enforce this), so the
//! collector can attribute each span to its parent and report the
//! maximum nesting depth observed.
//!
//! Each raw record also carries a start offset (microseconds since the
//! collector was created) and a process-wide *lane* id for the
//! recording thread, which is what lets the bounded raw log be
//! re-exported as a Chrome trace (see [`crate::TraceSpan`]) with one
//! timeline row per thread.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Mutex;

use crate::metrics::Table;

/// Raw span records kept verbatim before aggregation.
pub(crate) const RAW_CAPACITY: usize = 16_384;

/// Next unassigned thread lane. Lanes are process-global (not
/// per-collector) so a thread keeps one stable id across collectors;
/// they number threads in first-span order, not spawn order.
static NEXT_LANE: AtomicU32 = AtomicU32::new(0);

thread_local! {
    /// Names of the spans currently open on this thread, outermost first.
    static SPAN_STACK: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
    /// This thread's trace lane, claimed on first use.
    static LANE: u32 = NEXT_LANE.fetch_add(1, Ordering::Relaxed);
}

/// The calling thread's trace lane id.
pub(crate) fn current_lane() -> u32 {
    LANE.with(|l| *l)
}

/// One finished span occurrence.
#[derive(Clone, Debug)]
pub(crate) struct SpanRecord {
    pub(crate) name: &'static str,
    pub(crate) parent: Option<&'static str>,
    pub(crate) depth: u32,
    pub(crate) lane: u32,
    pub(crate) start_us: u64,
    pub(crate) duration_us: u64,
    pub(crate) args: Vec<(&'static str, f64)>,
}

/// Per-name aggregate of finished spans.
pub(crate) struct SpanAggCell {
    pub(crate) count: AtomicU64,
    pub(crate) total_us: AtomicU64,
    pub(crate) min_us: AtomicU64,
    pub(crate) max_us: AtomicU64,
    pub(crate) max_depth: AtomicU64,
}

impl Default for SpanAggCell {
    fn default() -> Self {
        SpanAggCell {
            count: AtomicU64::new(0),
            total_us: AtomicU64::new(0),
            min_us: AtomicU64::new(u64::MAX),
            max_us: AtomicU64::new(0),
            max_depth: AtomicU64::new(0),
        }
    }
}

fn fetch_max(cell: &AtomicU64, v: u64) {
    cell.fetch_max(v, Ordering::Relaxed);
}

fn fetch_min(cell: &AtomicU64, v: u64) {
    cell.fetch_min(v, Ordering::Relaxed);
}

/// Collects finished spans: per-name aggregates plus a bounded raw log.
pub(crate) struct SpanCollector {
    pub(crate) aggregates: Table<SpanAggCell>,
    records: Mutex<Vec<SpanRecord>>,
    dropped: AtomicU64,
    max_depth: AtomicU64,
}

impl SpanCollector {
    pub(crate) fn new() -> Self {
        SpanCollector {
            aggregates: Table::new(64, SpanAggCell::default),
            records: Mutex::new(Vec::new()),
            dropped: AtomicU64::new(0),
            max_depth: AtomicU64::new(0),
        }
    }

    /// Pushes `name` onto this thread's span stack and returns
    /// `(parent, depth)` for the new span (depth of the outermost
    /// span is 1).
    pub(crate) fn enter(&self, name: &'static str) -> (Option<&'static str>, u32) {
        SPAN_STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            let parent = stack.last().copied();
            stack.push(name);
            (parent, stack.len() as u32)
        })
    }

    /// Pops this thread's span stack and records the finished span.
    pub(crate) fn exit(&self, record: SpanRecord) {
        SPAN_STACK.with(|stack| {
            let popped = stack.borrow_mut().pop();
            debug_assert_eq!(
                popped,
                Some(record.name),
                "span guards dropped out of order"
            );
        });
        fetch_max(&self.max_depth, u64::from(record.depth));
        if let Some(agg) = self.aggregates.slot(record.name) {
            agg.count.fetch_add(1, Ordering::Relaxed);
            agg.total_us
                .fetch_add(record.duration_us, Ordering::Relaxed);
            fetch_min(&agg.min_us, record.duration_us);
            fetch_max(&agg.max_us, record.duration_us);
            fetch_max(&agg.max_depth, u64::from(record.depth));
        }
        let mut records = match self.records.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        if records.len() < RAW_CAPACITY {
            records.push(record);
        } else {
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Deepest nesting seen by any thread.
    pub(crate) fn max_depth(&self) -> u32 {
        self.max_depth.load(Ordering::Relaxed) as u32
    }

    /// Raw records dropped once the bounded log filled up.
    pub(crate) fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Snapshot of the raw record log.
    pub(crate) fn records(&self) -> Vec<SpanRecord> {
        match self.records.lock() {
            Ok(g) => g.clone(),
            Err(poisoned) => poisoned.into_inner().clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(name: &'static str, parent: Option<&'static str>, depth: u32) -> SpanRecord {
        SpanRecord {
            name,
            parent,
            depth,
            lane: current_lane(),
            start_us: 0,
            duration_us: 7,
            args: Vec::new(),
        }
    }

    #[test]
    fn enter_exit_tracks_nesting() {
        let c = SpanCollector::new();
        let (p1, d1) = c.enter("outer");
        assert_eq!((p1, d1), (None, 1));
        let (p2, d2) = c.enter("inner");
        assert_eq!((p2, d2), (Some("outer"), 2));
        c.exit(record("inner", p2, d2));
        c.exit(record("outer", p1, d1));
        assert_eq!(c.max_depth(), 2);
        let recs = c.records();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].name, "inner");
        assert_eq!(recs[0].parent, Some("outer"));
    }

    #[test]
    fn aggregates_accumulate_per_name() {
        let c = SpanCollector::new();
        for _ in 0..3 {
            let (p, d) = c.enter("loop");
            c.exit(record("loop", p, d));
        }
        let (_, agg) = c
            .aggregates
            .iter()
            .find(|(n, _)| *n == "loop")
            .expect("aggregate exists");
        assert_eq!(agg.count.load(Ordering::Relaxed), 3);
        assert_eq!(agg.total_us.load(Ordering::Relaxed), 21);
        assert_eq!(agg.min_us.load(Ordering::Relaxed), 7);
        assert_eq!(agg.max_us.load(Ordering::Relaxed), 7);
    }

    #[test]
    fn lane_is_stable_per_thread_and_distinct_across_threads() {
        let here = current_lane();
        assert_eq!(current_lane(), here);
        let other = std::thread::spawn(current_lane).join().expect("join");
        assert_ne!(here, other);
    }

    #[test]
    fn raw_log_saturates_and_counts_drops() {
        let c = SpanCollector::new();
        for _ in 0..(RAW_CAPACITY + 5) {
            let (p, d) = c.enter("hot");
            c.exit(record("hot", p, d));
        }
        assert_eq!(c.records().len(), RAW_CAPACITY);
        assert_eq!(c.dropped(), 5);
    }
}
