//! Live HTTP introspection endpoint.
//!
//! [`Telemetry::serve`] binds a `std::net::TcpListener` and answers
//! three read-only routes from a background thread, with the same
//! no-new-deps discipline as the rest of the workspace (the HTTP/1.1
//! subset is hand-rolled, like the JSON writer):
//!
//! - `GET /metrics` — Prometheus text exposition (format 0.0.4),
//! - `GET /snapshot.json` — the full snapshot as JSON,
//! - `GET /trace.json` — the raw span log as Chrome trace-event JSON.
//!
//! Every response is a fresh snapshot, so a scraper watches the run
//! live. Serving only *reads* collector state; the solver never reads
//! anything back, so a concurrently scraped run stays bit-identical
//! to an unobserved one. Each request bumps the
//! `telemetry.http.requests` counter. Dropping the returned
//! [`MetricsServer`] shuts the endpoint down gracefully: the accept
//! loop is woken with a throwaway connection and joined.

use std::io::{self, Read as _, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crate::{names, to_prometheus, Telemetry};

/// Longest request head (request line + headers) the server reads.
const MAX_REQUEST_BYTES: usize = 8 * 1024;

/// Per-connection socket timeout; a stalled scraper cannot wedge the
/// serving thread for longer than this.
const SOCKET_TIMEOUT: Duration = Duration::from_secs(2);

/// A running metrics endpoint. Dropping it stops the server.
pub struct MetricsServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl MetricsServer {
    /// The address actually bound (resolves port 0 to the real port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Wake the accept loop so it observes the flag; the connection
        // itself is discarded without being counted or answered.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl std::fmt::Debug for MetricsServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetricsServer")
            .field("addr", &self.addr)
            .finish()
    }
}

impl Telemetry {
    /// Starts the live HTTP endpoint on `addr` (use port 0 for an
    /// ephemeral port; the bound address is available via
    /// [`MetricsServer::addr`]).
    ///
    /// # Errors
    ///
    /// Returns [`io::ErrorKind::Unsupported`] when this handle is
    /// disabled (including `capture` compiled out) — there is nothing
    /// to serve — and propagates socket errors from bind/spawn.
    pub fn serve<A: ToSocketAddrs>(&self, addr: A) -> io::Result<MetricsServer> {
        if !self.is_enabled() {
            return Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "telemetry is disabled; there is no collector to serve",
            ));
        }
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&shutdown);
        let tele = self.clone();
        let handle = std::thread::Builder::new()
            .name("metis-metrics-http".to_string())
            // metis-lint: allow(CONC-01): the endpoint is a blocking I/O side channel, not solver fan-out; it must not occupy a worker slot
            .spawn(move || accept_loop(&listener, &tele, &flag))?;
        Ok(MetricsServer {
            addr,
            shutdown,
            handle: Some(handle),
        })
    }
}

/// Accepts connections until the shutdown flag is raised.
fn accept_loop(listener: &TcpListener, tele: &Telemetry, shutdown: &AtomicBool) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _peer)) => stream,
            Err(_) => {
                if shutdown.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
        };
        if shutdown.load(Ordering::SeqCst) {
            return;
        }
        tele.incr(names::TELEMETRY_HTTP_REQUESTS);
        // Per-connection errors (disconnects, timeouts) only affect
        // that scraper; the endpoint keeps serving.
        let _ = handle_connection(stream, tele);
    }
}

/// Serves exactly one request on `stream` (`Connection: close`).
fn handle_connection(mut stream: TcpStream, tele: &Telemetry) -> io::Result<()> {
    stream.set_read_timeout(Some(SOCKET_TIMEOUT))?;
    stream.set_write_timeout(Some(SOCKET_TIMEOUT))?;
    let (method, path) = match read_request_line(&mut stream) {
        Ok(parts) => parts,
        Err(_) => {
            return respond(&mut stream, "400 Bad Request", TEXT, "bad request\n");
        }
    };
    if method != "GET" {
        return respond(&mut stream, "405 Method Not Allowed", TEXT, "GET only\n");
    }
    match path.as_str() {
        "/metrics" => match tele.snapshot() {
            Some(snapshot) => respond(
                &mut stream,
                "200 OK",
                "text/plain; version=0.0.4; charset=utf-8",
                &to_prometheus(&snapshot),
            ),
            None => respond(&mut stream, "503 Service Unavailable", TEXT, "disabled\n"),
        },
        "/snapshot.json" => match tele.snapshot() {
            Some(snapshot) => respond(&mut stream, "200 OK", JSON, &snapshot.to_json()),
            None => respond(&mut stream, "503 Service Unavailable", TEXT, "disabled\n"),
        },
        "/trace.json" => match tele.chrome_trace() {
            Some(trace) => respond(&mut stream, "200 OK", JSON, &trace),
            None => respond(&mut stream, "503 Service Unavailable", TEXT, "disabled\n"),
        },
        _ => respond(
            &mut stream,
            "404 Not Found",
            TEXT,
            "routes: /metrics /snapshot.json /trace.json\n",
        ),
    }
}

const TEXT: &str = "text/plain; charset=utf-8";
const JSON: &str = "application/json; charset=utf-8";

/// Reads the request head and returns `(method, path)`.
fn read_request_line(stream: &mut TcpStream) -> io::Result<(String, String)> {
    let mut head = Vec::new();
    let mut chunk = [0_u8; 512];
    // Read until the blank line ending the head, so the client is not
    // hit with a response (and possibly a reset) mid-send.
    while !head.windows(4).any(|w| w == b"\r\n\r\n") {
        if head.len() >= MAX_REQUEST_BYTES {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "request head too large",
            ));
        }
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            break;
        }
        head.extend_from_slice(&chunk[..n]);
    }
    let text = String::from_utf8_lossy(&head);
    let request_line = text.lines().next().unwrap_or_default();
    let mut parts = request_line.split_whitespace();
    match (parts.next(), parts.next(), parts.next()) {
        (Some(method), Some(path), Some(version)) if version.starts_with("HTTP/") => {
            Ok((method.to_string(), path.to_string()))
        }
        _ => Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "malformed request line",
        )),
    }
}

/// Writes a full HTTP/1.1 response.
fn respond(stream: &mut TcpStream, status: &str, content_type: &str, body: &str) -> io::Result<()> {
    let header = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {len}\r\nConnection: close\r\n\r\n",
        len = body.len(),
    );
    stream.write_all(header.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate_prometheus;

    fn http_get(addr: SocketAddr, path: &str) -> (String, String) {
        let mut s = TcpStream::connect(addr).expect("connect");
        write!(
            s,
            "GET {path} HTTP/1.1\r\nHost: test\r\nConnection: close\r\n\r\n"
        )
        .expect("send request");
        let mut response = String::new();
        s.read_to_string(&mut response).expect("read response");
        let (head, body) = response.split_once("\r\n\r\n").expect("header separator");
        (head.to_string(), body.to_string())
    }

    #[cfg(feature = "capture")]
    #[test]
    fn serves_all_routes_and_counts_requests() {
        let t = Telemetry::enabled();
        t.incr(names::LP_SIMPLEX_ITERATIONS);
        {
            let _span = t.span(names::SPAN_METIS);
        }
        let server = t.serve("127.0.0.1:0").expect("bind ephemeral");

        let (head, body) = http_get(server.addr(), "/metrics");
        assert!(head.starts_with("HTTP/1.1 200 OK"), "head: {head}");
        assert!(head.contains("text/plain; version=0.0.4"));
        validate_prometheus(&body).expect("exposition is valid");
        assert!(body.contains("metis_lp_simplex_iterations"));

        let (head, body) = http_get(server.addr(), "/snapshot.json");
        assert!(head.starts_with("HTTP/1.1 200 OK"));
        assert!(head.contains("application/json"));
        assert!(body.contains("\"counters\""));

        let (head, body) = http_get(server.addr(), "/trace.json");
        assert!(head.starts_with("HTTP/1.1 200 OK"));
        assert!(body.contains("\"traceEvents\""));

        let (head, _) = http_get(server.addr(), "/nope");
        assert!(head.starts_with("HTTP/1.1 404"));

        // 4 requests served; the counter itself is sampled afterwards.
        let snap = t.snapshot().expect("enabled");
        assert_eq!(snap.counter(names::TELEMETRY_HTTP_REQUESTS), 4);
    }

    #[cfg(feature = "capture")]
    #[test]
    fn rejects_non_get_and_garbage() {
        let t = Telemetry::enabled();
        let server = t.serve("127.0.0.1:0").expect("bind ephemeral");

        let mut s = TcpStream::connect(server.addr()).expect("connect");
        write!(s, "POST /metrics HTTP/1.1\r\nHost: t\r\n\r\n").expect("send");
        let mut response = String::new();
        s.read_to_string(&mut response).expect("read");
        assert!(response.starts_with("HTTP/1.1 405"));

        let mut s = TcpStream::connect(server.addr()).expect("connect");
        s.write_all(b"\r\n\r\n").expect("send");
        let mut response = String::new();
        s.read_to_string(&mut response).expect("read");
        assert!(response.starts_with("HTTP/1.1 400"));
    }

    #[cfg(feature = "capture")]
    #[test]
    fn drop_shuts_down_and_frees_the_port() {
        let t = Telemetry::enabled();
        let server = t.serve("127.0.0.1:0").expect("bind ephemeral");
        let addr = server.addr();
        drop(server);
        // The port is released: a fresh bind to the same address works.
        let rebound = TcpListener::bind(addr).expect("port released after drop");
        drop(rebound);
    }

    #[test]
    fn disabled_handle_refuses_to_serve() {
        let t = Telemetry::disabled();
        let err = t.serve("127.0.0.1:0").expect_err("nothing to serve");
        assert_eq!(err.kind(), io::ErrorKind::Unsupported);
    }
}
