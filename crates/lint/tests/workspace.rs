//! Runs the full lint pass over the real workspace as a `#[test]`, so
//! tier-1 `cargo test` enforces the rule catalog on every change.

#[test]
fn workspace_is_lint_clean() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .expect("lint crate lives at <root>/crates/lint")
        .to_path_buf();
    let diags = metis_lint::run_workspace(&root).expect("lint infrastructure error");
    assert!(
        diags.is_empty(),
        "metis-lint found {} violation(s):\n{}",
        diags.len(),
        diags
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
}
