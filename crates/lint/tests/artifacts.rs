//! Artifacts-mode integration tests: the real checkout must be
//! drift-free, and injected drift in each artifact must be caught with
//! a dotted-path message.

use std::path::{Path, PathBuf};

use metis_lint::artifacts::{
    check_design_catalog, check_schema_fixture, extract_names, run_artifacts,
};

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("lint crate lives at <root>/crates/lint")
        .to_path_buf()
}

#[test]
fn workspace_artifacts_are_drift_free() {
    let findings = run_artifacts(&workspace_root()).expect("artifact files readable");
    assert!(
        findings.is_empty(),
        "artifact drift:\n{}",
        findings
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn injected_schema_metric_is_caught_with_dotted_path() {
    let root = workspace_root();
    let names =
        extract_names(&std::fs::read_to_string(root.join("crates/telemetry/src/lib.rs")).unwrap());
    let fixture =
        std::fs::read_to_string(root.join("tests/fixtures/telemetry_schema.json")).unwrap();
    // The pristine fixture is clean …
    assert!(check_schema_fixture(&fixture, &names).is_empty());
    // … and a fake counter drifts it. Splice the name into the real
    // counters object rather than a synthetic document, so the test
    // exercises the fixture's actual shape.
    let drifted = fixture.replacen(
        "\"counters\": {",
        "\"counters\": {\n    \"lp.totally_fake_metric\": 1,",
        1,
    );
    assert_ne!(drifted, fixture, "fixture must contain a counters object");
    let findings = check_schema_fixture(&drifted, &names);
    assert_eq!(findings.len(), 1, "{findings:?}");
    assert_eq!(findings[0].rule, "ART-01");
    assert!(
        findings[0]
            .message
            .contains("counters.lp.totally_fake_metric"),
        "finding must name the drift by dotted path: {}",
        findings[0]
    );
}

#[test]
fn removed_catalog_row_is_caught() {
    let root = workspace_root();
    let names =
        extract_names(&std::fs::read_to_string(root.join("crates/telemetry/src/lib.rs")).unwrap());
    let design = std::fs::read_to_string(root.join("DESIGN.md")).unwrap();
    assert!(check_design_catalog(&design, &names).is_empty());
    // Deleting a real catalog row must be reported as a missing name.
    let row_start = design
        .find("| `taa.mu` |")
        .expect("catalog row for taa.mu exists");
    let row_end = row_start + design[row_start..].find('\n').unwrap() + 1;
    let drifted = format!("{}{}", &design[..row_start], &design[row_end..]);
    let findings = check_design_catalog(&drifted, &names);
    assert_eq!(findings.len(), 1, "{findings:?}");
    assert_eq!(findings[0].rule, "ART-02");
    assert!(
        findings[0].message.contains("catalog.taa.mu") && findings[0].message.contains("missing"),
        "{}",
        findings[0]
    );
}
