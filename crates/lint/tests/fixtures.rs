//! Per-rule fixture tests: every rule is proven live by a failing
//! fixture and proven precise by a passing twin.
//!
//! Fixtures live in `crates/lint/fixtures/` (a directory the workspace
//! walk deliberately skips) and are linted under a *virtual* path so
//! each lands inside its rule's scope.

use metis_lint::{check_source, Allowlist};

/// (fixture file, virtual workspace path, rules expected to fire).
const CASES: &[(&str, &str, &[&str])] = &[
    ("det01_fail.rs", "crates/core/src/fixture.rs", &["DET-01"]),
    ("det01_pass.rs", "crates/core/src/fixture.rs", &[]),
    ("det02_fail.rs", "crates/core/src/fixture.rs", &["DET-02"]),
    ("det02_pass.rs", "crates/core/src/fixture.rs", &[]),
    ("fp01_fail.rs", "crates/bench/src/fixture.rs", &["FP-01"]),
    ("fp01_pass.rs", "crates/bench/src/fixture.rs", &[]),
    ("fp02_fail.rs", "crates/bench/src/fixture.rs", &["FP-02"]),
    ("fp02_pass.rs", "crates/bench/src/fixture.rs", &[]),
    ("panic01_fail.rs", "crates/lp/src/fixture.rs", &["PANIC-01"]),
    ("panic01_pass.rs", "crates/lp/src/fixture.rs", &[]),
    (
        "conc01_fail.rs",
        "crates/bench/src/fixture.rs",
        &["CONC-01"],
    ),
    // Identical spawn code is legal at the one blessed path.
    ("conc01_pass.rs", "crates/core/src/parallel.rs", &[]),
    (
        "safe01_fail.rs",
        "crates/netsim/src/fixture.rs",
        &["SAFE-01"],
    ),
    ("safe01_pass.rs", "crates/netsim/src/fixture.rs", &[]),
    ("doc01_fail.rs", "crates/core/src/fixture.rs", &["DOC-01"]),
    ("doc01_pass.rs", "crates/core/src/fixture.rs", &[]),
    // A reasonless suppression silences nothing and is itself flagged.
    (
        "lint00_fail.rs",
        "crates/lp/src/fixture.rs",
        &["LINT-00", "PANIC-01"],
    ),
    ("lint00_pass.rs", "crates/lp/src/fixture.rs", &[]),
    // v2 rules: syntax-aware analyses on the token tree / item parser.
    ("det03_fail.rs", "crates/bench/src/fixture.rs", &["DET-03"]),
    ("det03_pass.rs", "crates/bench/src/fixture.rs", &[]),
    ("fp03_fail.rs", "crates/bench/src/fixture.rs", &["FP-03"]),
    ("fp03_pass.rs", "crates/bench/src/fixture.rs", &[]),
    ("panic02_fail.rs", "crates/lp/src/fixture.rs", &["PANIC-02"]),
    // Every escape hatch: // INDEX:, debug_assert!, .min(…), ranges.
    ("panic02_pass.rs", "crates/lp/src/fixture.rs", &[]),
    ("api01_fail.rs", "crates/lp/src/fixture.rs", &["API-01"]),
    ("api01_pass.rs", "crates/lp/src/fixture.rs", &[]),
    // A reasoned suppression that matches nothing is dead weight.
    ("lint01_fail.rs", "crates/lp/src/fixture.rs", &["LINT-01"]),
    ("lint01_pass.rs", "crates/lp/src/fixture.rs", &[]),
    // Lexer hardening: raw/byte strings, nested comments, raw idents —
    // scary names inside literals must not reach any rule.
    ("lexer_forms_pass.rs", "crates/lp/src/fixture.rs", &[]),
];

#[test]
fn every_rule_has_a_live_failing_and_clean_passing_fixture() {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures");
    let allow = Allowlist::default();
    let mut covered: Vec<&str> = Vec::new();
    for (file, virtual_path, expected) in CASES {
        let src = std::fs::read_to_string(dir.join(file))
            .unwrap_or_else(|e| panic!("fixture {file}: {e}"));
        let mut fired: Vec<&str> = check_source(virtual_path, &src, &allow)
            .iter()
            .map(|d| d.rule)
            .collect();
        fired.dedup();
        assert_eq!(&fired, expected, "fixture {file} (as {virtual_path})");
        covered.extend(*expected);
    }
    covered.sort_unstable();
    covered.dedup();
    // The catalog: 8 lexical rules, 4 syntax-aware v2 rules, and the
    // two suppression meta-rules.
    assert_eq!(
        covered,
        [
            "API-01", "CONC-01", "DET-01", "DET-02", "DET-03", "DOC-01", "FP-01", "FP-02", "FP-03",
            "LINT-00", "LINT-01", "PANIC-01", "PANIC-02", "SAFE-01"
        ],
        "every rule must be proven live by at least one failing fixture"
    );
    assert!(CASES.len() >= 28, "every rule needs a pass/fail pair");
}
