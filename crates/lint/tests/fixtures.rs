//! Per-rule fixture tests: every rule is proven live by a failing
//! fixture and proven precise by a passing twin.
//!
//! Fixtures live in `crates/lint/fixtures/` (a directory the workspace
//! walk deliberately skips) and are linted under a *virtual* path so
//! each lands inside its rule's scope.

use metis_lint::{check_source, Allowlist};

/// (fixture file, virtual workspace path, rules expected to fire).
const CASES: &[(&str, &str, &[&str])] = &[
    ("det01_fail.rs", "crates/core/src/fixture.rs", &["DET-01"]),
    ("det01_pass.rs", "crates/core/src/fixture.rs", &[]),
    ("det02_fail.rs", "crates/core/src/fixture.rs", &["DET-02"]),
    ("det02_pass.rs", "crates/core/src/fixture.rs", &[]),
    ("fp01_fail.rs", "crates/bench/src/fixture.rs", &["FP-01"]),
    ("fp01_pass.rs", "crates/bench/src/fixture.rs", &[]),
    ("fp02_fail.rs", "crates/bench/src/fixture.rs", &["FP-02"]),
    ("fp02_pass.rs", "crates/bench/src/fixture.rs", &[]),
    ("panic01_fail.rs", "crates/lp/src/fixture.rs", &["PANIC-01"]),
    ("panic01_pass.rs", "crates/lp/src/fixture.rs", &[]),
    (
        "conc01_fail.rs",
        "crates/bench/src/fixture.rs",
        &["CONC-01"],
    ),
    // Identical spawn code is legal at the one blessed path.
    ("conc01_pass.rs", "crates/core/src/parallel.rs", &[]),
    (
        "safe01_fail.rs",
        "crates/netsim/src/fixture.rs",
        &["SAFE-01"],
    ),
    ("safe01_pass.rs", "crates/netsim/src/fixture.rs", &[]),
    ("doc01_fail.rs", "crates/core/src/fixture.rs", &["DOC-01"]),
    ("doc01_pass.rs", "crates/core/src/fixture.rs", &[]),
    // A reasonless suppression silences nothing and is itself flagged.
    (
        "lint00_fail.rs",
        "crates/lp/src/fixture.rs",
        &["LINT-00", "PANIC-01"],
    ),
    ("lint00_pass.rs", "crates/lp/src/fixture.rs", &[]),
];

#[test]
fn every_rule_has_a_live_failing_and_clean_passing_fixture() {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures");
    let allow = Allowlist::default();
    let mut covered: Vec<&str> = Vec::new();
    for (file, virtual_path, expected) in CASES {
        let src = std::fs::read_to_string(dir.join(file))
            .unwrap_or_else(|e| panic!("fixture {file}: {e}"));
        let mut fired: Vec<&str> = check_source(virtual_path, &src, &allow)
            .iter()
            .map(|d| d.rule)
            .collect();
        fired.dedup();
        assert_eq!(&fired, expected, "fixture {file} (as {virtual_path})");
        covered.extend(*expected);
    }
    covered.sort_unstable();
    covered.dedup();
    // The catalog: all 8 rules plus the suppression meta-rule.
    assert_eq!(
        covered,
        [
            "CONC-01", "DET-01", "DET-02", "DOC-01", "FP-01", "FP-02", "LINT-00", "PANIC-01",
            "SAFE-01"
        ],
        "every rule must be proven live by at least one failing fixture"
    );
    assert!(CASES.len() >= 16, "issue requires ≥16 fixtures");
}
