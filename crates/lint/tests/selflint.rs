//! The linter must hold itself to its own rules: every source file of
//! `crates/lint`, checked under its real workspace-relative path with
//! the real allowlist, reports nothing. (The workspace test covers this
//! transitively, but a dedicated test keeps the property obvious and
//! localizes the failure when the lint crate regresses itself.)

use std::path::Path;

use metis_lint::engine::collect_files;
use metis_lint::{check_source, Allowlist};

#[test]
fn lint_crate_is_clean_under_its_own_rules() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("lint crate lives at <root>/crates/lint");
    let allow = Allowlist::load(root).expect("lint.allow parses");
    let mut checked = 0usize;
    for path in collect_files(root) {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        if !rel.starts_with("crates/lint/") {
            continue;
        }
        let src = std::fs::read_to_string(&path).unwrap();
        let diags = check_source(&rel, &src, &allow);
        assert!(
            diags.is_empty(),
            "metis-lint flags its own source {rel}:\n{}",
            diags
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join("\n")
        );
        checked += 1;
    }
    // lexer, tree, items, rules, rules2, engine, artifacts, sarif, lib,
    // main, plus the test files themselves.
    assert!(checked >= 10, "only {checked} lint-crate files collected");
}
