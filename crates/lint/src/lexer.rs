//! A minimal Rust lexer: just enough to lint on.
//!
//! The rule matchers must never fire on text inside string literals or
//! comments (a doc sentence mentioning `HashMap` is not a violation), and
//! several rules need the *content* of comments (`// SAFETY:` markers,
//! `// metis-lint: allow(...)` suppressions). So the lexer splits a
//! source file into a token stream (identifiers, punctuation, literals)
//! and a parallel list of comments, each tagged with its 1-based line.
//!
//! It understands the lexical shapes that trip naive scanners: nested
//! block comments, escaped strings, raw strings (`r#"…"#`), byte and
//! byte-raw strings, char literals vs lifetimes (`'a'` vs `'a`), and
//! numeric literals with underscores, exponents, and type suffixes.
//! It does **not** parse: grammar-level work (attribute spans, test
//! modules) is layered on top in [`crate::engine`].

/// What a token is, at the granularity the rules care about.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`HashMap`, `pub`, `unsafe`, …).
    Ident,
    /// Operator or delimiter, multi-character ops kept whole (`==`, `::`).
    Punct,
    /// Integer literal (`42`, `0xff`, `7u32`).
    Int,
    /// Floating-point literal (`0.0`, `1e-9`, `2f64`).
    Float,
    /// String, raw-string, byte-string, or char literal (content dropped).
    Literal,
    /// Lifetime or loop label (`'a`, `'outer`).
    Lifetime,
}

/// One lexed token.
#[derive(Clone, Debug)]
pub struct Token {
    /// Token class.
    pub kind: TokenKind,
    /// Raw text. For [`TokenKind::Literal`] this is the full literal
    /// *including* its quotes and any `r`/`b`/`#` prefix, so a literal
    /// can never compare equal to an identifier — rules that match
    /// ident text stay safe, while consumers that need literal contents
    /// (the artifact cross-checker reads `pub const` string values) can
    /// unquote it. For raw identifiers (`r#match`) the `r#` prefix is
    /// stripped: the token is the identifier it escapes.
    pub text: String,
    /// 1-based source line the token starts on.
    pub line: u32,
}

/// One comment, with its text preserved for marker/suppression rules.
#[derive(Clone, Debug)]
pub struct Comment {
    /// Full comment text, delimiters included.
    pub text: String,
    /// 1-based line the comment starts on.
    pub line: u32,
    /// 1-based line the comment ends on (equal to `line` except for
    /// multi-line block comments).
    pub end_line: u32,
    /// Whether this is a doc comment (`///`, `//!`, `/**`, `/*!`).
    pub doc: bool,
}

/// A lexed source file: tokens and comments, both in source order.
#[derive(Clone, Debug, Default)]
pub struct Lexed {
    /// Code tokens in order.
    pub tokens: Vec<Token>,
    /// Comments in order.
    pub comments: Vec<Comment>,
}

/// Multi-character operators, longest first so the match is greedy.
const MULTI_OPS: &[&str] = &[
    "<<=", ">>=", "..=", "...", "::", "==", "!=", "<=", ">=", "->", "=>", "..", "&&", "||", "+=",
    "-=", "*=", "/=", "%=", "^=", "&=", "|=", "<<", ">>",
];

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Lexes one source file. Unterminated constructs (strings, block
/// comments) consume to end of input rather than erroring: the linter
/// must degrade gracefully on any input, and rustc will reject such
/// files anyway.
pub fn lex(src: &str) -> Lexed {
    let chars: Vec<char> = src.chars().collect();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line = 1u32;

    let n = chars.len();
    while i < n {
        let c = chars[i];
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }

        // Comments.
        if c == '/' && i + 1 < n && chars[i + 1] == '/' {
            let start = i;
            while i < n && chars[i] != '\n' {
                i += 1;
            }
            let text: String = chars[start..i].iter().collect();
            let doc =
                (text.starts_with("///") && !text.starts_with("////")) || text.starts_with("//!");
            out.comments.push(Comment {
                text,
                line,
                end_line: line,
                doc,
            });
            continue;
        }
        if c == '/' && i + 1 < n && chars[i + 1] == '*' {
            let start = i;
            let start_line = line;
            let mut depth = 1;
            i += 2;
            while i < n && depth > 0 {
                if chars[i] == '\n' {
                    line += 1;
                    i += 1;
                } else if chars[i] == '/' && i + 1 < n && chars[i + 1] == '*' {
                    depth += 1;
                    i += 2;
                } else if chars[i] == '*' && i + 1 < n && chars[i + 1] == '/' {
                    depth -= 1;
                    i += 2;
                } else {
                    i += 1;
                }
            }
            let text: String = chars[start..i].iter().collect();
            let doc =
                (text.starts_with("/**") && !text.starts_with("/***")) || text.starts_with("/*!");
            out.comments.push(Comment {
                text,
                line: start_line,
                end_line: line,
                doc,
            });
            continue;
        }

        // Raw strings and byte strings: r"…", r#"…"#, br"…", b"…" — and
        // the two non-string forms sharing these prefix letters: raw
        // identifiers (`r#match`) and byte-char literals (`b'x'`).
        if c == 'r' || c == 'b' {
            if let Some((next_i, lines)) = try_string_prefix(&chars, i) {
                out.tokens.push(Token {
                    kind: TokenKind::Literal,
                    text: chars[i..next_i].iter().collect(),
                    line,
                });
                line += lines;
                i = next_i;
                continue;
            }
            if c == 'r' && i + 2 < n && chars[i + 1] == '#' && is_ident_start(chars[i + 2]) {
                // Raw identifier: `r#type` is the identifier `type`.
                let start = i + 2;
                i = start;
                while i < n && is_ident_continue(chars[i]) {
                    i += 1;
                }
                out.tokens.push(Token {
                    kind: TokenKind::Ident,
                    text: chars[start..i].iter().collect(),
                    line,
                });
                continue;
            }
            if c == 'b' && i + 1 < n && chars[i + 1] == '\'' && is_char_literal(&chars, i + 1) {
                // Byte-char literal: `b'x'`, `b'\n'`, `b'\''`.
                let (next_i, lines) = skip_quoted(&chars, i + 2, '\'');
                out.tokens.push(Token {
                    kind: TokenKind::Literal,
                    text: chars[i..next_i].iter().collect(),
                    line,
                });
                line += lines;
                i = next_i;
                continue;
            }
        }

        // Plain strings.
        if c == '"' {
            let (next_i, lines) = skip_quoted(&chars, i + 1, '"');
            out.tokens.push(Token {
                kind: TokenKind::Literal,
                text: chars[i..next_i].iter().collect(),
                line,
            });
            line += lines;
            i = next_i;
            continue;
        }

        // Char literal vs lifetime.
        if c == '\'' {
            if is_char_literal(&chars, i) {
                let (next_i, lines) = skip_quoted(&chars, i + 1, '\'');
                out.tokens.push(Token {
                    kind: TokenKind::Literal,
                    text: chars[i..next_i].iter().collect(),
                    line,
                });
                line += lines;
                i = next_i;
            } else {
                let start = i;
                i += 1;
                while i < n && is_ident_continue(chars[i]) {
                    i += 1;
                }
                out.tokens.push(Token {
                    kind: TokenKind::Lifetime,
                    text: chars[start..i].iter().collect(),
                    line,
                });
            }
            continue;
        }

        // Identifiers and keywords.
        if is_ident_start(c) {
            let start = i;
            while i < n && is_ident_continue(chars[i]) {
                i += 1;
            }
            out.tokens.push(Token {
                kind: TokenKind::Ident,
                text: chars[start..i].iter().collect(),
                line,
            });
            continue;
        }

        // Numbers.
        if c.is_ascii_digit() {
            let (next_i, kind, text) = lex_number(&chars, i);
            out.tokens.push(Token { kind, text, line });
            i = next_i;
            continue;
        }

        // Punctuation, longest operator first.
        let mut matched = false;
        for op in MULTI_OPS {
            let len = op.len();
            if i + len <= n && chars[i..i + len].iter().collect::<String>() == *op {
                out.tokens.push(Token {
                    kind: TokenKind::Punct,
                    text: (*op).into(),
                    line,
                });
                i += len;
                matched = true;
                break;
            }
        }
        if !matched {
            out.tokens.push(Token {
                kind: TokenKind::Punct,
                text: c.to_string(),
                line,
            });
            i += 1;
        }
    }
    out
}

/// If `chars[i..]` starts a raw/byte string (`r"`, `r#"`, `br#"`, `b"`),
/// consumes it and returns `(index after it, newlines inside)`.
fn try_string_prefix(chars: &[char], i: usize) -> Option<(usize, u32)> {
    let n = chars.len();
    let mut j = i;
    if chars[j] == 'b' {
        j += 1;
        if j < n && chars[j] == '"' {
            // b"…": escaped like a normal string.
            let (next, lines) = skip_quoted(chars, j + 1, '"');
            return Some((next, lines));
        }
        if j >= n || chars[j] != 'r' {
            return None;
        }
    }
    if j < n && chars[j] == 'r' {
        j += 1;
        let mut hashes = 0usize;
        while j < n && chars[j] == '#' {
            hashes += 1;
            j += 1;
        }
        if j < n && chars[j] == '"' {
            // Raw string: ends at `"` followed by `hashes` hashes, no escapes.
            j += 1;
            let mut lines = 0u32;
            while j < n {
                if chars[j] == '\n' {
                    lines += 1;
                    j += 1;
                    continue;
                }
                if chars[j] == '"' {
                    let mut k = j + 1;
                    let mut seen = 0usize;
                    while k < n && seen < hashes && chars[k] == '#' {
                        seen += 1;
                        k += 1;
                    }
                    if seen == hashes {
                        return Some((k, lines));
                    }
                }
                j += 1;
            }
            return Some((j, lines));
        }
        return None;
    }
    None
}

/// Consumes an escaped quoted literal starting just after its opening
/// quote; returns `(index after the closing quote, newlines inside)`.
fn skip_quoted(chars: &[char], mut i: usize, quote: char) -> (usize, u32) {
    let n = chars.len();
    let mut lines = 0u32;
    while i < n {
        match chars[i] {
            '\\' => {
                // The escaped character may itself be a newline (string
                // line-continuation); skipping it without counting used
                // to desynchronize every line number after the literal.
                if i + 1 < n && chars[i + 1] == '\n' {
                    lines += 1;
                }
                i += 2;
            }
            '\n' => {
                lines += 1;
                i += 1;
            }
            c if c == quote => return (i + 1, lines),
            _ => i += 1,
        }
    }
    (i, lines)
}

/// Distinguishes `'x'` / `'\n'` (char literal) from `'label` (lifetime).
fn is_char_literal(chars: &[char], i: usize) -> bool {
    let n = chars.len();
    if i + 1 >= n {
        return false;
    }
    if chars[i + 1] == '\\' {
        return true;
    }
    // 'c' where the char after c is the closing quote. Lifetimes are
    // identifier-shaped with no closing quote.
    if i + 2 < n && chars[i + 2] == '\'' && chars[i + 1] != '\'' {
        return true;
    }
    false
}

/// Lexes a numeric literal starting at a digit, classifying int vs float.
fn lex_number(chars: &[char], mut i: usize) -> (usize, TokenKind, String) {
    let n = chars.len();
    let start = i;
    let mut float = false;

    if chars[i] == '0' && i + 1 < n && matches!(chars[i + 1], 'x' | 'o' | 'b') {
        i += 2;
        while i < n && (chars[i].is_ascii_hexdigit() || chars[i] == '_') {
            i += 1;
        }
    } else {
        while i < n && (chars[i].is_ascii_digit() || chars[i] == '_') {
            i += 1;
        }
        // Fractional part: a '.' followed by a digit (so `0..k` ranges and
        // `x.method()` stay out).
        if i + 1 < n && chars[i] == '.' && chars[i + 1].is_ascii_digit() {
            float = true;
            i += 1;
            while i < n && (chars[i].is_ascii_digit() || chars[i] == '_') {
                i += 1;
            }
        }
        // Exponent.
        if i < n && matches!(chars[i], 'e' | 'E') {
            let mut j = i + 1;
            if j < n && matches!(chars[j], '+' | '-') {
                j += 1;
            }
            if j < n && chars[j].is_ascii_digit() {
                float = true;
                i = j;
                while i < n && (chars[i].is_ascii_digit() || chars[i] == '_') {
                    i += 1;
                }
            }
        }
    }
    // Type suffix (`u32`, `f64`, …).
    let suffix_start = i;
    while i < n && is_ident_continue(chars[i]) {
        i += 1;
    }
    let suffix: String = chars[suffix_start..i].iter().collect();
    if suffix.starts_with('f') {
        float = true;
    }
    let kind = if float {
        TokenKind::Float
    } else {
        TokenKind::Int
    };
    (i, kind, chars[start..i].iter().collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(src: &str) -> Vec<String> {
        lex(src).tokens.into_iter().map(|t| t.text).collect()
    }

    #[test]
    fn strings_and_comments_are_stripped() {
        let l = lex("let x = \"HashMap\"; // HashMap here\n/* HashMap */ y");
        assert!(l.tokens.iter().all(|t| t.text != "HashMap"));
        assert_eq!(l.comments.len(), 2);
        assert!(l.comments[0].text.contains("HashMap here"));
    }

    #[test]
    fn nested_block_comments() {
        let l = lex("/* outer /* inner */ still */ code");
        assert_eq!(l.comments.len(), 1);
        assert_eq!(l.tokens.len(), 1);
        assert_eq!(l.tokens[0].text, "code");
    }

    #[test]
    fn raw_strings_swallow_quotes() {
        let l = lex(r###"let s = r#"a "quoted" HashMap"#; z"###);
        assert!(l.tokens.iter().all(|t| t.text != "HashMap"));
        assert_eq!(l.tokens.last().unwrap().text, "z");
    }

    #[test]
    fn char_literal_vs_lifetime() {
        let l = lex("fn f<'a>(c: char) { let x = 'x'; let nl = '\\n'; }");
        let lifetimes: Vec<_> = l
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .collect();
        assert_eq!(lifetimes.len(), 1);
        assert_eq!(lifetimes[0].text, "'a");
        let chars: Vec<_> = l
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Literal)
            .collect();
        assert_eq!(chars.len(), 2);
    }

    #[test]
    fn numbers_classify_float_vs_int() {
        let l = lex("0.0 1e-9 2f64 42 0xff 1_000 3..4 x.0");
        let kinds: Vec<_> = l
            .tokens
            .iter()
            .filter(|t| matches!(t.kind, TokenKind::Int | TokenKind::Float))
            .map(|t| (t.text.clone(), t.kind))
            .collect();
        assert_eq!(kinds[0], ("0.0".into(), TokenKind::Float));
        assert_eq!(kinds[1], ("1e-9".into(), TokenKind::Float));
        assert_eq!(kinds[2], ("2f64".into(), TokenKind::Float));
        assert_eq!(kinds[3], ("42".into(), TokenKind::Int));
        assert_eq!(kinds[4], ("0xff".into(), TokenKind::Int));
        assert_eq!(kinds[5], ("1_000".into(), TokenKind::Int));
        assert_eq!(kinds[6], ("3".into(), TokenKind::Int));
        assert_eq!(kinds[7], ("4".into(), TokenKind::Int));
        assert_eq!(kinds[8], ("0".into(), TokenKind::Int));
    }

    #[test]
    fn raw_strings_with_nested_hashes() {
        // `r##"…"#…"##`: an inner `"#` must not terminate a `##` string.
        let src = "let s = r##\"inner \"# quote HashMap\"##; tail";
        let l = lex(src);
        assert!(l.tokens.iter().all(|t| t.text != "HashMap"), "{l:?}");
        assert_eq!(l.tokens.last().unwrap().text, "tail");
        // More closing hashes than opened: `r#"a"##` is the string plus
        // a stray `#` token.
        let l = lex("r#\"a\"## x");
        assert_eq!(l.tokens[1].text, "#");
        assert_eq!(l.tokens[2].text, "x");
    }

    #[test]
    fn byte_and_raw_byte_strings() {
        let l = lex(r###"let a = b"HashMap\"still"; let b = br#"raw "HashMap""#; z"###);
        assert!(l
            .tokens
            .iter()
            .all(|t| t.kind != TokenKind::Ident || t.text != "HashMap"));
        assert_eq!(l.tokens.last().unwrap().text, "z");
        let lits: Vec<_> = l
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Literal)
            .collect();
        assert_eq!(lits.len(), 2);
        assert!(lits[0].text.starts_with("b\""));
        assert!(lits[1].text.starts_with("br#\""));
    }

    #[test]
    fn byte_char_literals() {
        let l = lex(r"let x = b'a'; let q = b'\''; let n = b'\n'; y");
        let lits: Vec<_> = l
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Literal)
            .map(|t| t.text.clone())
            .collect();
        assert_eq!(lits, vec![r"b'a'", r"b'\''", r"b'\n'"]);
        assert_eq!(l.tokens.last().unwrap().text, "y");
    }

    #[test]
    fn raw_identifiers_strip_prefix() {
        let l = lex("fn r#match(r#type: u32) {}");
        let idents: Vec<_> = l
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text.clone())
            .collect();
        assert_eq!(idents, vec!["fn", "match", "type", "u32"]);
    }

    #[test]
    fn string_line_continuations_keep_line_numbers() {
        // A `\`-escaped newline inside a string is one more source line;
        // losing it desynchronizes every later line number.
        let l = lex("let s = \"a\\\nb\";\nafter");
        assert_eq!(l.tokens.last().unwrap().text, "after");
        assert_eq!(l.tokens.last().unwrap().line, 3);
    }

    #[test]
    fn multiline_raw_strings_keep_line_numbers() {
        let l = lex("let s = r#\"one\ntwo\nthree\"#;\nafter");
        assert_eq!(l.tokens.last().unwrap().text, "after");
        assert_eq!(l.tokens.last().unwrap().line, 4);
    }

    #[test]
    fn deeply_nested_block_comments() {
        let l = lex("/* a /* b /* c */ b */ a */ x /* /**/ */ y");
        let texts: Vec<_> = l.tokens.iter().map(|t| t.text.clone()).collect();
        assert_eq!(texts, vec!["x", "y"]);
        assert_eq!(l.comments.len(), 2);
    }

    #[test]
    fn literal_text_is_preserved_with_quotes() {
        // Literal tokens keep their full text (quotes included), so a
        // string literal can never equal an identifier a rule matches.
        let l = lex("let s = \"HashMap\";");
        let lit = l
            .tokens
            .iter()
            .find(|t| t.kind == TokenKind::Literal)
            .unwrap();
        assert_eq!(lit.text, "\"HashMap\"");
    }

    #[test]
    fn multi_char_operators_stay_whole() {
        assert_eq!(
            texts("a == b != c <= d :: e"),
            vec!["a", "==", "b", "!=", "c", "<=", "d", "::", "e"]
        );
    }

    #[test]
    fn lines_are_tracked() {
        let l = lex("a\nb\n  c");
        assert_eq!(l.tokens[0].line, 1);
        assert_eq!(l.tokens[1].line, 2);
        assert_eq!(l.tokens[2].line, 3);
    }

    #[test]
    fn doc_comments_flagged() {
        let l = lex("/// doc\n//! inner\n// plain\n//// not doc\nx");
        let docs: Vec<bool> = l.comments.iter().map(|c| c.doc).collect();
        assert_eq!(docs, vec![true, true, false, false]);
    }
}
