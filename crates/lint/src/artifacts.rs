//! Cross-artifact consistency checks (`metis-lint --artifacts`).
//!
//! The repo commits several *derived* artifacts that restate facts the
//! code already encodes: the telemetry schema fixture, the DESIGN.md §7
//! metric catalog and §5b family table, and the README's CLI flag
//! documentation. Prose drifts; these checks make the drift a CI
//! failure with a dotted-path message instead of a stale doc. Same
//! philosophy as the runtime certificate layer (`metis_lp::verify`,
//! `metis_core::audit`): verify the machine-checkable contract, don't
//! trust the narrative.
//!
//! | check | artifact | direction |
//! |---|---|---|
//! | `ART-01` | `tests/fixtures/telemetry_schema.json` | fixture → `metis_telemetry::names` (every recorded name must be declared) |
//! | `ART-02` | DESIGN.md §7 metric catalog | bidirectional with metric + event constants |
//! | `ART-03` | README.md | every `spm`/`zoo` CLI flag must be documented |
//! | `ART-04` | DESIGN.md §5b | every `crates/workload/src/families/` module must be described |
//!
//! The fixture check is deliberately one-directional: the schema
//! fixture pins the snapshot of one golden offline run, which touches
//! only a subset of the declared names (no incidents, no online epochs
//! on the happy path). Every name it does contain, though, must exist
//! in code — an injected or misspelled name is exactly the drift this
//! catches.
//!
//! All checks are pure functions over artifact text so tests can inject
//! synthetic drift; [`run_artifacts`] wires them to the real files.

use std::fs;
use std::path::Path;

use crate::engine::Diagnostic;
use crate::lexer::{self, TokenKind};

/// The telemetry name constants declared in
/// `crates/telemetry/src/lib.rs`'s `names` module, classified by the
/// constant-name prefix convention (`SPAN_*`, `EVENT_*`, `ARG_*`,
/// everything else a metric).
#[derive(Clone, Debug, Default)]
pub struct TelemetryNames {
    /// Counter/gauge/histogram/series names.
    pub metrics: Vec<String>,
    /// Event-stream names (`EVENT_*`).
    pub events: Vec<String>,
    /// Span names (`SPAN_*`).
    pub spans: Vec<String>,
    /// Span-argument names (`ARG_*`).
    pub args: Vec<String>,
}

impl TelemetryNames {
    fn is_metric(&self, name: &str) -> bool {
        self.metrics.iter().any(|m| m == name)
    }

    fn is_span(&self, name: &str) -> bool {
        self.spans.iter().any(|s| s == name)
    }
}

/// Extracts `pub const NAME: &str = "value";` declarations from the
/// telemetry crate's source.
pub fn extract_names(src: &str) -> TelemetryNames {
    let toks = lexer::lex(src).tokens;
    let mut out = TelemetryNames::default();
    for w in toks.windows(6) {
        // `IDENT : & str = "…"` — the tail of a
        // `pub const IDENT: &str = "…";` declaration; anchoring on the
        // ident lets one window see both the name and the value.
        if w[0].kind == TokenKind::Ident
            && w[1].text == ":"
            && w[2].text == "&"
            && w[3].text == "str"
            && w[4].text == "="
            && w[5].kind == TokenKind::Literal
            && w[5].text.starts_with('"')
        {
            let value = w[5].text.trim_matches('"').to_string();
            let bucket = if w[0].text.starts_with("SPAN_") {
                &mut out.spans
            } else if w[0].text.starts_with("EVENT_") {
                &mut out.events
            } else if w[0].text.starts_with("ARG_") {
                &mut out.args
            } else {
                &mut out.metrics
            };
            bucket.push(value);
        }
    }
    out
}

/// Extracts the `"--flag"` string literals a CLI binary matches on,
/// `--help` excluded (it is conventional, not documented per binary).
pub fn extract_cli_flags(src: &str) -> Vec<String> {
    let mut flags: Vec<String> = lexer::lex(src)
        .tokens
        .iter()
        .filter(|t| t.kind == TokenKind::Literal)
        .filter_map(|t| {
            let s = t.text.strip_prefix('"')?.strip_suffix('"')?;
            let rest = s.strip_prefix("--")?;
            (!rest.is_empty()
                && rest
                    .chars()
                    .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-')
                && s != "--help")
                .then(|| s.to_string())
        })
        .collect();
    flags.sort();
    flags.dedup();
    flags
}

fn finding(file: &str, line: u32, rule: &'static str, message: String) -> Diagnostic {
    Diagnostic {
        file: file.to_string(),
        line,
        rule,
        message,
    }
}

/// 1-based line of the first occurrence of `needle` in `text` (1 when
/// absent, so every finding has a clickable anchor).
fn line_of(text: &str, needle: &str) -> u32 {
    match text.find(needle) {
        Some(pos) => 1 + text[..pos].bytes().filter(|&b| b == b'\n').count() as u32,
        None => 1,
    }
}

/// `ART-01`: every name the schema fixture records must be declared in
/// `metis_telemetry::names` — metric sections against metric constants,
/// the `spans` section against span constants.
pub fn check_schema_fixture(fixture: &str, names: &TelemetryNames) -> Vec<Diagnostic> {
    const FILE: &str = "tests/fixtures/telemetry_schema.json";
    let json = match Json::parse(fixture) {
        Ok(j) => j,
        Err(e) => {
            return vec![finding(
                FILE,
                1,
                "ART-01",
                format!("telemetry schema fixture is not valid JSON: {e}"),
            )];
        }
    };
    let mut out = Vec::new();
    for section in ["counters", "gauges", "histograms", "series"] {
        for key in json.object_keys(section) {
            if !names.is_metric(key) {
                out.push(finding(
                    FILE,
                    line_of(fixture, &format!("\"{key}\"")),
                    "ART-01",
                    format!(
                        "{section}.{key}: name is not declared in `metis_telemetry::names` \
— fix the spelling or declare the constant"
                    ),
                ));
            }
        }
    }
    for key in json.object_keys("spans") {
        if !names.is_span(key) {
            out.push(finding(
                FILE,
                line_of(fixture, &format!("\"{key}\"")),
                "ART-01",
                format!(
                    "spans.{key}: span name is not declared in `metis_telemetry::names` \
— fix the spelling or declare the `SPAN_*` constant"
                ),
            ));
        }
    }
    out
}

/// `ART-02`: the DESIGN.md §7 metric catalog must list exactly the
/// metric and event constants — a missing row hides an instrument, an
/// extra row documents a ghost.
pub fn check_design_catalog(design: &str, names: &TelemetryNames) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let catalog = catalog_names(design);
    let mut declared: Vec<&str> = names
        .metrics
        .iter()
        .chain(&names.events)
        .map(String::as_str)
        .collect();
    declared.sort_unstable();
    for name in &declared {
        if !catalog.iter().any(|(c, _)| c == name) {
            out.push(finding(
                "DESIGN.md",
                line_of(design, "**Metric catalog**"),
                "ART-02",
                format!(
                    "§7 catalog.{name}: declared in `metis_telemetry::names` but missing \
from the DESIGN.md §7 metric catalog table — add a row"
                ),
            ));
        }
    }
    for (name, line) in &catalog {
        if !declared.contains(&name.as_str()) {
            out.push(finding(
                "DESIGN.md",
                *line,
                "ART-02",
                format!(
                    "§7 catalog.{name}: listed in the DESIGN.md §7 catalog but not \
declared in `metis_telemetry::names` — delete the row or declare the constant"
                ),
            ));
        }
    }
    out
}

/// Backticked names in the first column of the §7 metric catalog table,
/// with their 1-based lines.
fn catalog_names(design: &str) -> Vec<(String, u32)> {
    let mut out = Vec::new();
    let mut in_table = false;
    for (idx, line) in design.lines().enumerate() {
        let trimmed = line.trim();
        if !in_table {
            if trimmed.starts_with("| name |") {
                in_table = true;
            }
            continue;
        }
        if !trimmed.starts_with('|') {
            break;
        }
        let first_cell = trimmed.trim_start_matches('|');
        let Some(cell) = first_cell.split('|').next() else {
            continue;
        };
        // Every `token` in the first cell is a name (one row may list
        // several related names).
        let mut rest = cell;
        while let Some(open) = rest.find('`') {
            let tail = &rest[open + 1..];
            let Some(close) = tail.find('`') else { break };
            let name = &tail[..close];
            if !name.is_empty() && !name.starts_with('-') {
                out.push((name.to_string(), (idx + 1) as u32));
            }
            rest = &tail[close + 1..];
        }
    }
    out
}

/// `ART-03`: every flag an `spm`/`zoo` binary accepts must occur in the
/// README (code blocks count), matched on whole-flag boundaries so
/// `--telemetry` does not satisfy `--telemetry-prometheus`.
pub fn check_readme_flags(readme: &str, binary: &str, flags: &[String]) -> Vec<Diagnostic> {
    let bytes = readme.as_bytes();
    let flag_char = |b: u8| b.is_ascii_lowercase() || b.is_ascii_digit() || b == b'-';
    let documented = |flag: &str| {
        let mut from = 0usize;
        while let Some(pos) = readme[from..].find(flag) {
            let start = from + pos;
            let end = start + flag.len();
            let ok_before = start == 0 || !flag_char(bytes[start - 1]);
            let ok_after = end == bytes.len() || !flag_char(bytes[end]);
            if ok_before && ok_after {
                return true;
            }
            from = start + 1;
        }
        false
    };
    flags
        .iter()
        .filter(|f| !documented(f))
        .map(|f| {
            finding(
                "README.md",
                1,
                "ART-03",
                format!("flags.{binary}.{f}: the `{binary}` binary accepts `{f}` but README.md never mentions it"),
            )
        })
        .collect()
}

/// `ART-04`: every generator module under `crates/workload/src/families/`
/// must be described in DESIGN.md §5b. A module stem counts as described
/// when §5b backticks a name starting with it (`geo` → `geo_locality`).
pub fn check_family_docs(design: &str, stems: &[String]) -> Vec<Diagnostic> {
    let section = section_5b(design);
    stems
        .iter()
        .filter(|stem| !section.contains(&format!("`{stem}")))
        .map(|stem| {
            finding(
                "DESIGN.md",
                line_of(design, "## 5b."),
                "ART-04",
                format!(
                    "§5b.families.{stem}: generator module \
`crates/workload/src/families/{stem}.rs` is not described in the DESIGN.md §5b \
family list"
                ),
            )
        })
        .collect()
}

fn section_5b(design: &str) -> &str {
    let Some(start) = design.find("## 5b.") else {
        return "";
    };
    let body = &design[start..];
    match body[3..].find("\n## ") {
        Some(end) => &body[..end + 3],
        None => body,
    }
}

/// Runs every artifact check against the real workspace checkout.
///
/// # Errors
///
/// Returns a message when a required artifact file cannot be read —
/// a missing artifact is an infrastructure failure, not a finding.
pub fn run_artifacts(root: &Path) -> Result<Vec<Diagnostic>, String> {
    let read = |rel: &str| {
        fs::read_to_string(root.join(rel)).map_err(|e| format!("cannot read {rel}: {e}"))
    };
    let names = extract_names(&read("crates/telemetry/src/lib.rs")?);
    let design = read("DESIGN.md")?;
    let readme = read("README.md")?;

    let mut out = Vec::new();
    out.extend(check_schema_fixture(
        &read("tests/fixtures/telemetry_schema.json")?,
        &names,
    ));
    out.extend(check_design_catalog(&design, &names));
    for bin in ["spm", "zoo"] {
        let flags = extract_cli_flags(&read(&format!("crates/bench/src/bin/{bin}.rs"))?);
        out.extend(check_readme_flags(&readme, bin, &flags));
    }
    let mut stems = Vec::new();
    let fam_dir = root.join("crates/workload/src/families");
    let entries =
        fs::read_dir(&fam_dir).map_err(|e| format!("cannot read {}: {e}", fam_dir.display()))?;
    for entry in entries.flatten() {
        let name = entry.file_name().to_string_lossy().into_owned();
        if let Some(stem) = name.strip_suffix(".rs") {
            if stem != "mod" && stem != "common" {
                stems.push(stem.to_string());
            }
        }
    }
    stems.sort();
    out.extend(check_family_docs(&design, &stems));
    out.sort();
    Ok(out)
}

/// A just-enough JSON value for reading fixture shapes: objects keep
/// key order, numbers are not interpreted (the checks only need keys).
/// Hand-rolled so the lint crate keeps its zero-dependency property.
enum Json {
    Null,
    Bool,
    Num,
    Str(String),
    Arr,
    Obj(Vec<(String, Json)>),
}

impl Json {
    fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let v = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing bytes at offset {pos}"));
        }
        Ok(v)
    }

    /// Keys of the object stored under the top-level field `key`
    /// (empty when absent or not an object).
    fn object_keys(&self, key: &str) -> Vec<&str> {
        let Json::Obj(fields) = self else {
            return Vec::new();
        };
        match fields.iter().find(|(k, _)| k == key) {
            Some((_, Json::Obj(inner))) => inner.iter().map(|(k, _)| k.as_str()).collect(),
            _ => Vec::new(),
        }
    }
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    let Some(&c) = b.get(*pos) else {
        return Err("unexpected end of input".to_string());
    };
    match c {
        b'{' => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            loop {
                skip_ws(b, pos);
                let Json::Str(key) = parse_value(b, pos)? else {
                    return Err(format!("object key is not a string at offset {pos}"));
                };
                skip_ws(b, pos);
                if b.get(*pos) != Some(&b':') {
                    return Err(format!("expected `:` at offset {pos}"));
                }
                *pos += 1;
                fields.push((key, parse_value(b, pos)?));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(fields));
                    }
                    _ => return Err(format!("expected `,` or `}}` at offset {pos}")),
                }
            }
        }
        b'[' => {
            // Element values are validated but not kept — the checks
            // only read object keys.
            *pos += 1;
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr);
            }
            loop {
                parse_value(b, pos)?;
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr);
                    }
                    _ => return Err(format!("expected `,` or `]` at offset {pos}")),
                }
            }
        }
        b'"' => {
            *pos += 1;
            let mut s = String::new();
            while let Some(&c) = b.get(*pos) {
                match c {
                    b'"' => {
                        *pos += 1;
                        return Ok(Json::Str(s));
                    }
                    b'\\' => {
                        // Keys in our fixtures are plain names; decode
                        // the escapes structurally, keep `\u` verbatim.
                        *pos += 1;
                        match b.get(*pos) {
                            Some(b'n') => s.push('\n'),
                            Some(b't') => s.push('\t'),
                            Some(&e) => s.push(e as char),
                            None => return Err("unterminated escape".to_string()),
                        }
                        *pos += 1;
                    }
                    _ => {
                        s.push(c as char);
                        *pos += 1;
                    }
                }
            }
            Err("unterminated string".to_string())
        }
        b't' | b'f' => {
            let (word, v) = if c == b't' {
                ("true", Json::Bool)
            } else {
                ("false", Json::Bool)
            };
            if b[*pos..].starts_with(word.as_bytes()) {
                *pos += word.len();
                Ok(v)
            } else {
                Err(format!("bad literal at offset {pos}"))
            }
        }
        b'n' => {
            if b[*pos..].starts_with(b"null") {
                *pos += 4;
                Ok(Json::Null)
            } else {
                Err(format!("bad literal at offset {pos}"))
            }
        }
        b'-' | b'0'..=b'9' => {
            while *pos < b.len()
                && matches!(b[*pos], b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
            {
                *pos += 1;
            }
            Ok(Json::Num)
        }
        other => Err(format!(
            "unexpected byte `{}` at offset {pos}",
            other as char
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn names() -> TelemetryNames {
        TelemetryNames {
            metrics: vec!["lp.solves".into(), "taa.mu".into(), "audit.checks".into()],
            events: vec!["incident".into()],
            spans: vec!["metis".into(), "alternation.round".into()],
            args: vec!["lp.iterations".into()],
        }
    }

    #[test]
    fn extract_names_classifies_by_prefix() {
        let src = r#"
            pub mod names {
                pub const LP_SOLVES: &str = "lp.solves";
                pub const EVENT_INCIDENT: &str = "incident";
                pub const SPAN_METIS: &str = "metis";
                pub const ARG_LP_ITERATIONS: &str = "lp.iterations";
            }
        "#;
        let n = extract_names(src);
        assert_eq!(n.metrics, vec!["lp.solves"]);
        assert_eq!(n.events, vec!["incident"]);
        assert_eq!(n.spans, vec!["metis"]);
        assert_eq!(n.args, vec!["lp.iterations"]);
    }

    #[test]
    fn schema_check_accepts_declared_names() {
        let fixture = r#"{"counters": {"lp.solves": 1}, "series": {"taa.mu": []},
                          "spans": {"metis": {}}}"#;
        assert!(check_schema_fixture(fixture, &names()).is_empty());
    }

    #[test]
    fn schema_check_reports_dotted_path_for_fake_metric() {
        let fixture = r#"{
  "counters": {"lp.solves": 1, "lp.fake_metric": 2}
}"#;
        let out = check_schema_fixture(fixture, &names());
        assert_eq!(out.len(), 1);
        assert!(
            out[0].message.contains("counters.lp.fake_metric"),
            "{}",
            out[0]
        );
        assert_eq!(out[0].line, 2);
        let fake_span = r#"{"spans": {"metis": {}, "bogus.span": {}}}"#;
        let out = check_schema_fixture(fake_span, &names());
        assert_eq!(out.len(), 1);
        assert!(out[0].message.contains("spans.bogus.span"), "{}", out[0]);
    }

    #[test]
    fn catalog_check_is_bidirectional() {
        let complete = "**Metric catalog**\n\n| name | kind | meaning |\n|---|---|---|\n\
                        | `lp.solves` | counter | solves |\n\
                        | `taa.mu` | series | mu |\n\
                        | `audit.checks` | counter | audits |\n\
                        | `incident` | event | incidents |\n";
        assert!(check_design_catalog(complete, &names()).is_empty());
        let missing = "**Metric catalog**\n\n| name | kind | meaning |\n|---|---|---|\n\
                       | `lp.solves` | counter | solves |\n\
                       | `taa.mu` | series | mu |\n\
                       | `incident` | event | incidents |\n\
                       | `ghost.metric` | counter | gone |\n";
        let out = check_design_catalog(missing, &names());
        assert_eq!(out.len(), 2, "{out:?}");
        assert!(out
            .iter()
            .any(|d| d.message.contains("catalog.audit.checks") && d.message.contains("missing")));
        assert!(out
            .iter()
            .any(|d| d.message.contains("catalog.ghost.metric") && d.line == 8));
    }

    #[test]
    fn readme_flag_check_matches_whole_flags() {
        let readme = "Run `spm --telemetry out.json` or\n    --requests 200 --seed 7\n";
        let flags = vec![
            "--requests".to_string(),
            "--seed".to_string(),
            "--telemetry".to_string(),
        ];
        assert!(check_readme_flags(readme, "spm", &flags).is_empty());
        // `--telemetry` being documented must not satisfy the longer flag.
        let flags = vec!["--telemetry-prometheus".to_string()];
        let out = check_readme_flags(readme, "spm", &flags);
        assert_eq!(out.len(), 1);
        assert!(out[0].message.contains("flags.spm.--telemetry-prometheus"));
    }

    #[test]
    fn family_check_allows_prefix_names() {
        let design =
            "## 5b. Families\n\n* `uniform` — base\n* `geo_locality` — pops\n\n## 6. Next\n";
        let stems = vec!["geo".to_string(), "uniform".to_string()];
        assert!(check_family_docs(design, &stems).is_empty());
        let stems = vec!["hose".to_string()];
        let out = check_family_docs(design, &stems);
        assert_eq!(out.len(), 1);
        assert!(out[0].message.contains("§5b.families.hose"), "{}", out[0]);
    }

    #[test]
    fn json_parser_handles_fixture_shapes() {
        let j = Json::parse(r#"{"a": {"x": [1, -2.5e3, true, null]}, "b": "s"}"#).unwrap();
        assert_eq!(j.object_keys("a"), vec!["x"]);
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("{} extra").is_err());
    }
}
