//! The rule matchers.
//!
//! Each rule walks the token stream of one file (comments and string
//! contents already stripped by the lexer) and reports pattern hits.
//! Scoping — which directories a rule polices, and whether test code is
//! exempt — is part of each rule's definition, documented in
//! `DESIGN.md` §8.

use crate::engine::{Diagnostic, FileCtx};
use crate::lexer::{Token, TokenKind};

/// Directories whose non-test code must iterate deterministically.
const SOLVER_PATHS: &[&str] = &["crates/core/src/", "crates/lp/src/"];
/// Directories whose non-test code must not panic.
const NO_PANIC_PATHS: &[&str] = &[
    "crates/core/src/",
    "crates/lp/src/",
    "crates/telemetry/src/",
];
/// The one file allowed to spawn threads.
const SPAWN_HOME: &str = "crates/core/src/parallel.rs";
/// Clock calls are confined to telemetry-gated sites; the telemetry
/// crate itself is the gate.
const CLOCK_HOME: &str = "crates/telemetry/";

/// Runs every rule against one file.
pub fn run_all(ctx: &FileCtx<'_>) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    det01_unordered_collections(ctx, &mut out);
    det02_wall_clock(ctx, &mut out);
    fp01_float_eq(ctx, &mut out);
    fp02_partial_cmp_unwrap(ctx, &mut out);
    panic01_panics(ctx, &mut out);
    conc01_spawn(ctx, &mut out);
    safe01_safety_comment(ctx, &mut out);
    doc01_missing_docs(ctx, &mut out);
    out
}

fn diag(ctx: &FileCtx<'_>, line: u32, rule: &'static str, message: String) -> Diagnostic {
    Diagnostic {
        file: ctx.rel.to_string(),
        line,
        rule,
        message,
    }
}

/// `DET-01`: no `HashMap`/`HashSet` in solver paths — their iteration
/// order varies run to run, which breaks bit-identical determinism.
fn det01_unordered_collections(ctx: &FileCtx<'_>, out: &mut Vec<Diagnostic>) {
    if !ctx.under(SOLVER_PATHS) {
        return;
    }
    for t in idents(ctx) {
        if (t.text == "HashMap" || t.text == "HashSet") && !ctx.in_test(t.line) {
            out.push(diag(
                ctx,
                t.line,
                "DET-01",
                format!(
                    "`{}` in a solver path: iteration order is nondeterministic; \
use `BTreeMap`/`BTreeSet` or an index vec",
                    t.text
                ),
            ));
        }
    }
}

/// `DET-02`: no `Instant::now`/`SystemTime` outside the telemetry crate
/// — stray clock reads make runs time-dependent and un-replayable.
fn det02_wall_clock(ctx: &FileCtx<'_>, out: &mut Vec<Diagnostic>) {
    if ctx.rel.starts_with(CLOCK_HOME) {
        return;
    }
    let toks = &ctx.lexed.tokens;
    for (i, t) in toks.iter().enumerate() {
        if ctx.in_test(t.line) {
            continue;
        }
        if t.text == "SystemTime" {
            out.push(diag(
                ctx,
                t.line,
                "DET-02",
                "`SystemTime` outside telemetry: route wall-clock reads through \
`metis-telemetry` so they can be disabled"
                    .into(),
            ));
        }
        if t.text == "Instant"
            && toks.get(i + 1).is_some_and(|n| n.text == "::")
            && toks.get(i + 2).is_some_and(|n| n.text == "now")
        {
            out.push(diag(
                ctx,
                t.line,
                "DET-02",
                "`Instant::now` outside telemetry: route timing through \
`metis-telemetry` spans so it can be disabled"
                    .into(),
            ));
        }
    }
}

/// `FP-01`: no `==`/`!=` against floating-point literals — exact float
/// equality is almost always a latent bug; compare with a tolerance or
/// restructure.
fn fp01_float_eq(ctx: &FileCtx<'_>, out: &mut Vec<Diagnostic>) {
    let toks = &ctx.lexed.tokens;
    for (i, t) in toks.iter().enumerate() {
        if !(t.kind == TokenKind::Punct && (t.text == "==" || t.text == "!=")) {
            continue;
        }
        if ctx.in_test(t.line) {
            continue;
        }
        let float_left = i
            .checked_sub(1)
            .and_then(|j| toks.get(j))
            .is_some_and(|p| p.kind == TokenKind::Float);
        // `x == -0.0`: a sign may sit between the operator and the literal.
        let mut j = i + 1;
        if toks.get(j).is_some_and(|n| n.text == "-") {
            j += 1;
        }
        let float_right = toks.get(j).is_some_and(|n| n.kind == TokenKind::Float);
        if float_left || float_right {
            out.push(diag(
                ctx,
                t.line,
                "FP-01",
                format!(
                    "float `{}` comparison: exact floating-point equality is \
NaN- and rounding-unsafe",
                    t.text
                ),
            ));
        }
    }
}

/// `FP-02`: no `.partial_cmp(..).unwrap()`/`.expect(..)` — panics on
/// NaN; use `f64::total_cmp` for a total order.
fn fp02_partial_cmp_unwrap(ctx: &FileCtx<'_>, out: &mut Vec<Diagnostic>) {
    let toks = &ctx.lexed.tokens;
    for (i, t) in toks.iter().enumerate() {
        if t.text != "partial_cmp" || toks.get(i + 1).is_none_or(|n| n.text != "(") {
            continue;
        }
        // Find the close of the partial_cmp(...) argument list.
        let mut depth = 0usize;
        let mut j = i + 1;
        while j < toks.len() {
            match toks[j].text.as_str() {
                "(" => depth += 1,
                ")" => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            j += 1;
        }
        let unwrapped = toks.get(j + 1).is_some_and(|n| n.text == ".")
            && toks
                .get(j + 2)
                .is_some_and(|n| n.text == "unwrap" || n.text == "expect");
        if unwrapped {
            out.push(diag(
                ctx,
                t.line,
                "FP-02",
                "`.partial_cmp(..).unwrap()` panics on NaN; use `f64::total_cmp`".into(),
            ));
        }
    }
}

/// `PANIC-01`: no `unwrap`/`expect`/`panic!`/`unreachable!`/`todo!`/
/// `unimplemented!` in non-test code of `core`/`lp`/`telemetry` — PR 2's
/// error taxonomy exists so solver failures are contained, not fatal.
fn panic01_panics(ctx: &FileCtx<'_>, out: &mut Vec<Diagnostic>) {
    if !ctx.under(NO_PANIC_PATHS) {
        return;
    }
    let toks = &ctx.lexed.tokens;
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokenKind::Ident || ctx.in_test(t.line) {
            continue;
        }
        let method_call = i
            .checked_sub(1)
            .and_then(|j| toks.get(j))
            .is_some_and(|p| p.text == ".");
        let is_macro = toks.get(i + 1).is_some_and(|n| n.text == "!");
        let hit = match t.text.as_str() {
            "unwrap" | "expect" => method_call,
            "panic" | "unreachable" | "todo" | "unimplemented" => is_macro,
            _ => false,
        };
        if hit {
            out.push(diag(
                ctx,
                t.line,
                "PANIC-01",
                format!(
                    "`{}` in non-test solver code: return a `SolveError`/`InstanceError` \
instead of aborting the process",
                    t.text
                ),
            ));
        }
    }
}

/// `CONC-01`: thread spawning only in `core/src/parallel.rs` — one
/// choke point keeps the deterministic index-ordered reduction the only
/// way work fans out.
fn conc01_spawn(ctx: &FileCtx<'_>, out: &mut Vec<Diagnostic>) {
    if ctx.rel == SPAWN_HOME {
        return;
    }
    let toks = &ctx.lexed.tokens;
    for (i, t) in toks.iter().enumerate() {
        if t.text != "spawn" || ctx.in_test(t.line) {
            continue;
        }
        let called = i
            .checked_sub(1)
            .and_then(|j| toks.get(j))
            .is_some_and(|p| p.text == "." || p.text == "::");
        if called {
            out.push(diag(
                ctx,
                t.line,
                "CONC-01",
                format!(
                    "thread spawn outside `{SPAWN_HOME}`: all parallelism must go \
through the deterministic `run_indexed` choke point"
                ),
            ));
        }
    }
}

/// `SAFE-01`: every `unsafe` keyword carries a `// SAFETY:` comment on
/// the same line or within the three lines above it.
fn safe01_safety_comment(ctx: &FileCtx<'_>, out: &mut Vec<Diagnostic>) {
    for t in idents(ctx) {
        if t.text != "unsafe" {
            continue;
        }
        let justified = ctx.lexed.comments.iter().any(|c| {
            c.text.contains("SAFETY:") && c.end_line <= t.line && c.end_line + 3 >= t.line
        });
        if !justified {
            out.push(diag(
                ctx,
                t.line,
                "SAFE-01",
                "`unsafe` without a `// SAFETY:` comment justifying the invariants".into(),
            ));
        }
    }
}

/// Item keywords that make a `pub` token a documentable item. Fields,
/// `pub use` re-exports, and `pub mod` declarations are out of scope.
const DOC_ITEMS: &[&str] = &[
    "fn", "struct", "enum", "trait", "const", "static", "type", "union",
];

/// `DOC-01`: public items in `metis-core` must carry doc comments —
/// the crate is the API surface later PRs build on.
fn doc01_missing_docs(ctx: &FileCtx<'_>, out: &mut Vec<Diagnostic>) {
    if !ctx.rel.starts_with("crates/core/src/") {
        return;
    }
    let toks = &ctx.lexed.tokens;
    let attr_lines = attribute_lines(toks);
    for (i, t) in toks.iter().enumerate() {
        if t.text != "pub" || t.kind != TokenKind::Ident || ctx.in_test(t.line) {
            continue;
        }
        // Restricted visibility (`pub(crate)`, `pub(super)`) is not part
        // of the public API surface — out of scope.
        let mut j = i + 1;
        if toks.get(j).is_some_and(|n| n.text == "(") {
            continue;
        }
        // Skip modifiers between visibility and the item keyword.
        while toks
            .get(j)
            .is_some_and(|n| matches!(n.text.as_str(), "async" | "unsafe" | "extern"))
        {
            j += 1;
        }
        let Some(item) = toks.get(j) else { continue };
        if !DOC_ITEMS.contains(&item.text.as_str()) {
            continue;
        }
        if !has_doc(ctx, &attr_lines, t.line) {
            out.push(diag(
                ctx,
                t.line,
                "DOC-01",
                format!("public `{}` in metis-core without a doc comment", item.text),
            ));
        }
    }
}

/// Lines covered by outer attributes (`#[...]`, possibly multi-line), so
/// the doc-comment search can look through them.
pub(crate) fn attribute_lines(toks: &[Token]) -> Vec<u32> {
    let mut lines = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if toks[i].text == "#" && toks.get(i + 1).is_some_and(|n| n.text == "[") {
            let mut depth = 0usize;
            let mut j = i + 1;
            while j < toks.len() {
                match toks[j].text.as_str() {
                    "[" | "(" => depth += 1,
                    "]" | ")" => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                lines.push(toks[j].line);
                j += 1;
            }
            lines.push(toks[i].line);
            i = j + 1;
        } else {
            i += 1;
        }
    }
    lines.sort_unstable();
    lines.dedup();
    lines
}

/// Whether the item starting at `item_line` has an attached doc comment:
/// walk upward through attribute lines and plain comments until a doc
/// comment (found) or anything else (missing).
fn has_doc(ctx: &FileCtx<'_>, attr_lines: &[u32], item_line: u32) -> bool {
    let mut l = item_line.saturating_sub(1);
    while l >= 1 {
        if ctx.lexed.comments.iter().any(|c| c.doc && c.end_line == l) {
            return true;
        }
        let transparent = attr_lines.binary_search(&l).is_ok()
            || ctx.lexed.comments.iter().any(|c| !c.doc && c.end_line == l);
        if !transparent {
            return false;
        }
        l -= 1;
    }
    false
}

fn idents<'a>(ctx: &'a FileCtx<'_>) -> impl Iterator<Item = &'a Token> {
    ctx.lexed
        .tokens
        .iter()
        .filter(|t| t.kind == TokenKind::Ident)
}

#[cfg(test)]
mod tests {
    use crate::engine::{check_source, Allowlist};

    fn rules_hit(rel: &str, src: &str) -> Vec<&'static str> {
        let allow = Allowlist::default();
        let mut rules: Vec<_> = check_source(rel, src, &allow)
            .into_iter()
            .map(|d| d.rule)
            .collect();
        rules.dedup();
        rules
    }

    #[test]
    fn det01_fires_only_in_solver_paths() {
        let src = "use std::collections::HashMap;\n";
        assert_eq!(rules_hit("crates/core/src/x.rs", src), vec!["DET-01"]);
        assert_eq!(rules_hit("crates/bench/src/x.rs", src), Vec::<&str>::new());
    }

    #[test]
    fn det02_allows_telemetry() {
        let src = "fn f() { let t = Instant::now(); }\n";
        assert_eq!(rules_hit("crates/core/src/x.rs", src), vec!["DET-02"]);
        assert_eq!(
            rules_hit("crates/telemetry/src/x.rs", src),
            Vec::<&str>::new()
        );
    }

    #[test]
    fn fp01_literal_adjacency() {
        assert_eq!(
            rules_hit(
                "crates/bench/src/x.rs",
                "fn f(x: f64) -> bool { x == 0.0 }\n"
            ),
            vec!["FP-01"]
        );
        assert_eq!(
            rules_hit(
                "crates/bench/src/x.rs",
                "fn f(x: f64) -> bool { x == -0.0 }\n"
            ),
            vec!["FP-01"]
        );
        assert_eq!(
            rules_hit("crates/bench/src/x.rs", "fn f(x: i64) -> bool { x <= 0 }\n"),
            Vec::<&str>::new()
        );
    }

    #[test]
    fn fp02_spans_the_argument_list() {
        let src = "fn f(a: f64, b: f64) { a.partial_cmp(&b).unwrap(); }\n";
        assert_eq!(rules_hit("crates/bench/src/x.rs", src), vec!["FP-02"]);
        let ok = "fn f(a: f64, b: f64) { a.total_cmp(&b); }\n";
        assert_eq!(rules_hit("crates/bench/src/x.rs", ok), Vec::<&str>::new());
    }

    #[test]
    fn panic01_distinguishes_unwrap_or() {
        let hit = "fn f(v: Vec<u32>) { v.first().unwrap(); }\n";
        assert_eq!(rules_hit("crates/lp/src/x.rs", hit), vec!["PANIC-01"]);
        let ok = "fn f(v: Vec<u32>) -> u32 { v.first().copied().unwrap_or(0) }\n";
        assert_eq!(rules_hit("crates/lp/src/x.rs", ok), Vec::<&str>::new());
    }

    #[test]
    fn panic01_skips_cfg_test_modules() {
        let src = "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { Some(1).unwrap(); }\n}\n";
        assert_eq!(rules_hit("crates/core/src/x.rs", src), Vec::<&str>::new());
    }

    #[test]
    fn conc01_allows_only_parallel_rs() {
        let src = "fn f() { std::thread::spawn(|| {}); }\n";
        assert_eq!(rules_hit("crates/bench/src/x.rs", src), vec!["CONC-01"]);
        assert_eq!(
            rules_hit("crates/core/src/parallel.rs", src),
            Vec::<&str>::new()
        );
    }

    #[test]
    fn safe01_needs_nearby_safety_comment() {
        let hit = "fn f(p: *const u8) -> u8 { unsafe { *p } }\n";
        assert_eq!(rules_hit("crates/bench/src/x.rs", hit), vec!["SAFE-01"]);
        let ok =
            "// SAFETY: caller guarantees p is valid\nfn f(p: *const u8) -> u8 { unsafe { *p } }\n";
        assert_eq!(rules_hit("crates/bench/src/x.rs", ok), Vec::<&str>::new());
    }

    #[test]
    fn doc01_core_pub_items() {
        let hit = "pub fn f() {}\n";
        assert_eq!(rules_hit("crates/core/src/x.rs", hit), vec!["DOC-01"]);
        let ok = "/// Documented.\npub fn f() {}\n";
        assert_eq!(rules_hit("crates/core/src/x.rs", ok), Vec::<&str>::new());
        let attr = "/// Documented.\n#[inline]\npub fn f() {}\n";
        assert_eq!(rules_hit("crates/core/src/x.rs", attr), Vec::<&str>::new());
        let restricted = "pub(crate) fn f() {}\n";
        assert_eq!(
            rules_hit("crates/core/src/x.rs", restricted),
            Vec::<&str>::new()
        );
        let outside = "pub fn f() {}\n";
        assert_eq!(rules_hit("crates/lp/src/x.rs", outside), Vec::<&str>::new());
    }
}
