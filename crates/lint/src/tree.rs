//! Brace-matched token trees: the structural layer between the flat
//! lexer stream and the item parser.
//!
//! A [`Tree`] is either a single token or a delimited group (`(…)`,
//! `[…]`, `{…}`) containing a subtree. Building the tree once lets
//! rules reason about *structure* the flat stream cannot express: "the
//! body of this `for` loop", "the expression inside this index
//! bracket", "the items of this `impl` block". Angle brackets are not
//! groups — `<`/`>` double as comparison operators, so generics are
//! handled by the consumers that need them ([`crate::items`]).
//!
//! The builder never fails: a stray closer becomes an atom, an
//! unterminated group closes at end of input. The linter must degrade
//! gracefully on any input; rustc rejects such files anyway.

use crate::lexer::Token;

/// Group delimiter kind.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Delim {
    /// `( … )`
    Paren,
    /// `[ … ]`
    Bracket,
    /// `{ … }`
    Brace,
}

impl Delim {
    fn open(c: &str) -> Option<Delim> {
        match c {
            "(" => Some(Delim::Paren),
            "[" => Some(Delim::Bracket),
            "{" => Some(Delim::Brace),
            _ => None,
        }
    }

    fn close(self) -> &'static str {
        match self {
            Delim::Paren => ")",
            Delim::Bracket => "]",
            Delim::Brace => "}",
        }
    }
}

/// One node of the token tree.
#[derive(Clone, Debug)]
pub enum Tree {
    /// A single non-delimiter token.
    Atom(Token),
    /// A delimited group.
    Group(Group),
}

/// A delimited group and its contents.
#[derive(Clone, Debug)]
pub struct Group {
    /// Which delimiter pair wraps the group.
    pub delim: Delim,
    /// 1-based line of the opening delimiter.
    pub open_line: u32,
    /// 1-based line of the closing delimiter (last content line when
    /// unterminated).
    pub close_line: u32,
    /// Child trees in source order.
    pub trees: Vec<Tree>,
}

impl Tree {
    /// The atom's token, if this is an atom.
    pub fn atom(&self) -> Option<&Token> {
        match self {
            Tree::Atom(t) => Some(t),
            Tree::Group(_) => None,
        }
    }

    /// The atom's text, if this is an atom.
    pub fn atom_text(&self) -> Option<&str> {
        self.atom().map(|t| t.text.as_str())
    }

    /// The group, if this is one.
    pub fn group(&self) -> Option<&Group> {
        match self {
            Tree::Atom(_) => None,
            Tree::Group(g) => Some(g),
        }
    }

    /// 1-based line this tree starts on.
    pub fn line(&self) -> u32 {
        match self {
            Tree::Atom(t) => t.line,
            Tree::Group(g) => g.open_line,
        }
    }
}

impl Group {
    /// All tokens inside the group, descending into nested groups,
    /// delimiters excluded.
    pub fn flat_tokens(&self) -> Vec<&Token> {
        let mut out = Vec::new();
        flatten(&self.trees, &mut out);
        out
    }
}

/// Collects every atom token in `trees`, in source order, descending
/// into groups (group delimiters themselves are not tokens here).
pub fn flatten<'a>(trees: &'a [Tree], out: &mut Vec<&'a Token>) {
    for t in trees {
        match t {
            Tree::Atom(tok) => out.push(tok),
            Tree::Group(g) => flatten(&g.trees, out),
        }
    }
}

/// Builds the token tree for a whole file's token stream.
pub fn build(tokens: &[Token]) -> Vec<Tree> {
    let mut i = 0usize;
    build_until(tokens, &mut i, None)
}

fn build_until(tokens: &[Token], i: &mut usize, closing: Option<&str>) -> Vec<Tree> {
    let mut out = Vec::new();
    while *i < tokens.len() {
        let t = &tokens[*i];
        if let Some(close) = closing {
            if t.text == close {
                return out;
            }
        }
        if let Some(delim) = Delim::open(&t.text) {
            let open_line = t.line;
            *i += 1;
            let trees = build_until(tokens, i, Some(delim.close()));
            let close_line = if *i < tokens.len() {
                tokens[*i].line
            } else {
                tokens.last().map_or(open_line, |last| last.line)
            };
            *i += 1; // past the closer (or EOF)
            out.push(Tree::Group(Group {
                delim,
                open_line,
                close_line,
                trees,
            }));
            continue;
        }
        if matches!(t.text.as_str(), ")" | "]" | "}") {
            // Stray closer for some *other* delimiter (or unbalanced
            // input): keep it as an atom and carry on.
            out.push(Tree::Atom(t.clone()));
            *i += 1;
            continue;
        }
        out.push(Tree::Atom(t.clone()));
        *i += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn tree_of(src: &str) -> Vec<Tree> {
        build(&lex(src).tokens)
    }

    #[test]
    fn groups_nest() {
        let t = tree_of("fn f(a: u32) { g(a[0]); }");
        // fn, f, (…), {…}
        assert_eq!(t.len(), 4);
        let body = t[3].group().unwrap();
        assert_eq!(body.delim, Delim::Brace);
        // g, (…), ;
        assert_eq!(body.trees.len(), 3);
        let call = body.trees[1].group().unwrap();
        assert_eq!(call.delim, Delim::Paren);
        // a, […]
        assert_eq!(call.trees.len(), 2);
        assert_eq!(call.trees[1].group().unwrap().delim, Delim::Bracket);
    }

    #[test]
    fn lines_span_groups() {
        let t = tree_of("{\n x\n}");
        let g = t[0].group().unwrap();
        assert_eq!((g.open_line, g.close_line), (1, 3));
    }

    #[test]
    fn unbalanced_input_degrades() {
        // Unterminated group closes at EOF; stray closer becomes an atom.
        let t = tree_of("f(a");
        assert_eq!(t.len(), 2);
        assert_eq!(t[1].group().unwrap().trees.len(), 1);
        let t = tree_of(") x");
        assert_eq!(t.len(), 2);
        assert_eq!(t[0].atom_text(), Some(")"));
    }

    #[test]
    fn flatten_walks_in_order() {
        let t = tree_of("a { b [ c ] d } e");
        let mut toks = Vec::new();
        flatten(&t, &mut toks);
        let texts: Vec<_> = toks.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(texts, vec!["a", "b", "c", "d", "e"]);
    }
}
