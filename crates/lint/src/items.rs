//! A lightweight item parser on top of the token tree.
//!
//! Recognizes just enough Rust grammar for the syntax-aware rules:
//! item kind and name, visibility, attributes, `fn` signatures with
//! their return-type tokens, and `mod`/`impl` nesting. It is *not* a
//! real parser — expression grammar, patterns, and generics semantics
//! are out of scope — but unlike the flat token stream it knows which
//! `fn` a `pub` belongs to and what the function returns, which is what
//! rules like API-01 (`Result`-returning fns need an `# Errors` doc
//! section) require.

use crate::tree::{Delim, Tree};

/// Item visibility, at the granularity rules care about.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Vis {
    /// No visibility keyword.
    Private,
    /// `pub(crate)`, `pub(super)`, `pub(in …)` — not public API.
    Restricted,
    /// Plain `pub`.
    Public,
}

/// What kind of item a parsed item is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ItemKind {
    /// `fn` (free, method, or trait-default).
    Fn,
    /// `struct`
    Struct,
    /// `enum`
    Enum,
    /// `trait`
    Trait,
    /// `const`
    Const,
    /// `static`
    Static,
    /// `type`
    TypeAlias,
    /// `union`
    Union,
    /// `mod` with a body (items recursed into [`Item::children`]).
    Mod,
    /// `impl` block (items recursed into [`Item::children`]).
    Impl,
    /// `use` declaration.
    Use,
}

/// One parsed item.
#[derive(Clone, Debug)]
pub struct Item {
    /// Item kind.
    pub kind: ItemKind,
    /// Item name (`fn foo` → `foo`); empty for `impl` and `use`.
    pub name: String,
    /// Visibility.
    pub vis: Vis,
    /// 1-based line of the item's first token (visibility or keyword —
    /// doc-comment lookups walk upward from here).
    pub line: u32,
    /// For `fn`: the return-type tokens after `->` (empty = unit).
    pub ret: Vec<String>,
    /// For `use`: the flattened path tokens (`std :: fmt :: Display`).
    pub path: Vec<String>,
    /// Attribute text lines this item carries (flattened token text per
    /// attribute, e.g. `cfg ( test )`).
    pub attrs: Vec<String>,
    /// Nested items of `mod`/`impl` bodies.
    pub children: Vec<Item>,
}

/// Parses the items of one tree level (a file root or a `mod`/`impl`
/// body), recursing into `mod` and `impl` groups.
pub fn parse_items(trees: &[Tree]) -> Vec<Item> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < trees.len() {
        if let Some((item, next)) = parse_item(trees, i) {
            out.push(item);
            i = next;
        } else {
            i += 1;
        }
    }
    out
}

/// Walks every item in `items` (depth-first, `mod`/`impl` bodies
/// included), calling `f` with the item and whether any enclosing item
/// is `#[cfg(test)]`-marked.
pub fn walk<'a>(items: &'a [Item], f: &mut impl FnMut(&'a Item, bool)) {
    fn inner<'a>(items: &'a [Item], in_test: bool, f: &mut impl FnMut(&'a Item, bool)) {
        for it in items {
            let test_here = in_test || it.is_cfg_test();
            f(it, test_here);
            inner(&it.children, test_here, f);
        }
    }
    inner(items, false, f);
}

impl Item {
    /// Whether the item carries a `#[cfg(test)]`-like attribute (any
    /// `cfg` attribute mentioning `test`, plus `#[test]` itself).
    pub fn is_cfg_test(&self) -> bool {
        self.attrs.iter().any(|a| {
            let mut words = a.split_whitespace();
            match words.next() {
                Some("cfg") => a.split_whitespace().any(|w| w == "test"),
                Some("test") => true,
                _ => false,
            }
        })
    }
}

/// Tries to parse one item starting at `trees[start]`; returns the item
/// and the index just past it.
fn parse_item(trees: &[Tree], start: usize) -> Option<(Item, usize)> {
    let mut i = start;
    let mut attrs = Vec::new();

    // Leading outer attributes: `#` `[ … ]`. Inner attributes (`#![…]`)
    // have a `!` between and are skipped by the caller loop.
    while i + 1 < trees.len()
        && trees[i].atom_text() == Some("#")
        && trees[i + 1]
            .group()
            .is_some_and(|g| g.delim == Delim::Bracket)
    {
        let g = trees[i + 1].group().expect("checked bracket group");
        let text: Vec<&str> = g.flat_tokens().iter().map(|t| t.text.as_str()).collect();
        attrs.push(text.join(" "));
        i += 2;
    }

    let first_line = trees.get(i)?.line();

    // Visibility.
    let mut vis = Vis::Private;
    if trees[i].atom_text() == Some("pub") {
        vis = Vis::Public;
        i += 1;
        if trees
            .get(i)
            .is_some_and(|t| t.group().is_some_and(|g| g.delim == Delim::Paren))
        {
            vis = Vis::Restricted;
            i += 1;
        }
    }

    // Modifiers before the item keyword. `const` doubles as an item
    // keyword and a `const fn` modifier; peek ahead to disambiguate.
    loop {
        match trees.get(i).and_then(Tree::atom_text) {
            Some("async") | Some("unsafe") => i += 1,
            Some("extern") => {
                i += 1;
                // Optional ABI string.
                if trees
                    .get(i)
                    .and_then(Tree::atom)
                    .is_some_and(|t| t.text.starts_with('"'))
                {
                    i += 1;
                }
            }
            Some("const") if trees.get(i + 1).and_then(Tree::atom_text) == Some("fn") => i += 1,
            _ => break,
        }
    }

    let kw = trees.get(i).and_then(Tree::atom_text)?;
    let kind = match kw {
        "fn" => ItemKind::Fn,
        "struct" => ItemKind::Struct,
        "enum" => ItemKind::Enum,
        "trait" => ItemKind::Trait,
        "const" => ItemKind::Const,
        "static" => ItemKind::Static,
        "type" => ItemKind::TypeAlias,
        "union" => ItemKind::Union,
        "mod" => ItemKind::Mod,
        "impl" => ItemKind::Impl,
        "use" => ItemKind::Use,
        _ => return None,
    };
    i += 1;

    let mut item = Item {
        kind,
        name: String::new(),
        vis,
        line: first_line,
        ret: Vec::new(),
        path: Vec::new(),
        attrs,
        children: Vec::new(),
    };

    match kind {
        ItemKind::Fn => {
            item.name = trees.get(i).and_then(Tree::atom_text)?.to_string();
            i += 1;
            // Generics: skip balanced angles, counting `<<`/`>>` double.
            i = skip_generics(trees, i);
            // Parameter list.
            while i < trees.len() {
                if trees[i].group().is_some_and(|g| g.delim == Delim::Paren) {
                    i += 1;
                    break;
                }
                i += 1;
            }
            // Return type: tokens after `->` until body/where/`;`.
            if trees.get(i).and_then(Tree::atom_text) == Some("->") {
                i += 1;
                while let Some(t) = trees.get(i) {
                    match t {
                        Tree::Atom(tok) => {
                            if tok.text == "where" || tok.text == ";" {
                                break;
                            }
                            item.ret.push(tok.text.clone());
                        }
                        Tree::Group(g) => {
                            if g.delim == Delim::Brace {
                                break;
                            }
                            for tok in g.flat_tokens() {
                                item.ret.push(tok.text.clone());
                            }
                        }
                    }
                    i += 1;
                }
            }
            // Consume through the body brace or terminating `;`.
            while let Some(t) = trees.get(i) {
                i += 1;
                match t {
                    Tree::Group(g) if g.delim == Delim::Brace => break,
                    Tree::Atom(tok) if tok.text == ";" => break,
                    _ => {}
                }
            }
        }
        ItemKind::Mod => {
            item.name = trees.get(i).and_then(Tree::atom_text)?.to_string();
            i += 1;
            match trees.get(i) {
                Some(Tree::Group(g)) if g.delim == Delim::Brace => {
                    item.children = parse_items(&g.trees);
                    i += 1;
                }
                _ => i += 1, // `mod name;`
            }
        }
        ItemKind::Impl => {
            // Everything up to the body brace is the (generic) type
            // header; items live inside.
            while let Some(t) = trees.get(i) {
                match t {
                    Tree::Group(g) if g.delim == Delim::Brace => {
                        item.children = parse_items(&g.trees);
                        i += 1;
                        break;
                    }
                    Tree::Atom(tok) if tok.text == ";" => {
                        i += 1;
                        break;
                    }
                    _ => i += 1,
                }
            }
        }
        ItemKind::Use => {
            while let Some(t) = trees.get(i) {
                match t {
                    Tree::Atom(tok) => {
                        if tok.text == ";" {
                            i += 1;
                            break;
                        }
                        item.path.push(tok.text.clone());
                        i += 1;
                    }
                    Tree::Group(g) => {
                        for tok in g.flat_tokens() {
                            item.path.push(tok.text.clone());
                        }
                        i += 1;
                    }
                }
            }
        }
        _ => {
            // Named single-token items: struct/enum/trait/const/static/
            // type/union. Name, then consume to the end of the item.
            item.name = trees
                .get(i)
                .and_then(Tree::atom_text)
                .unwrap_or_default()
                .to_string();
            i += 1;
            let mut angle = 0i32;
            while let Some(t) = trees.get(i) {
                match t {
                    Tree::Atom(tok) => {
                        match tok.text.as_str() {
                            "<" => angle += 1,
                            "<<" => angle += 2,
                            ">" => angle -= 1,
                            ">>" => angle -= 2,
                            ";" if angle <= 0 => {
                                i += 1;
                                break;
                            }
                            _ => {}
                        }
                        i += 1;
                    }
                    Tree::Group(g) => {
                        i += 1;
                        // A brace group ends struct/enum/trait/union
                        // bodies; `struct Tuple(u32);` ends at `;`.
                        if g.delim == Delim::Brace {
                            break;
                        }
                    }
                }
            }
        }
    }

    Some((item, i))
}

/// Skips a balanced generics list starting at `<` (if present),
/// counting shift tokens as two angles. `->`/`=>` contain angle
/// characters but are single tokens and are not counted.
fn skip_generics(trees: &[Tree], mut i: usize) -> usize {
    if trees.get(i).and_then(Tree::atom_text) != Some("<") {
        return i;
    }
    let mut depth = 0i32;
    while let Some(t) = trees.get(i) {
        if let Some(text) = t.atom_text() {
            match text {
                "<" => depth += 1,
                "<<" => depth += 2,
                ">" => depth -= 1,
                ">>" => depth -= 2,
                _ => {}
            }
        }
        i += 1;
        if depth <= 0 {
            break;
        }
    }
    i
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::tree::build;

    fn items(src: &str) -> Vec<Item> {
        parse_items(&build(&lex(src).tokens))
    }

    #[test]
    fn fn_signature_with_return_type() {
        let its = items("pub fn load(p: &Path) -> Result<Allowlist, String> { todo() }");
        assert_eq!(its.len(), 1);
        assert_eq!(its[0].kind, ItemKind::Fn);
        assert_eq!(its[0].name, "load");
        assert_eq!(its[0].vis, Vis::Public);
        assert!(its[0].ret.iter().any(|t| t == "Result"));
    }

    #[test]
    fn generics_do_not_confuse_params() {
        let its = items("pub fn f<F: Fn(u32) -> bool>(g: F) -> Option<u32> { None }");
        assert_eq!(its[0].name, "f");
        assert_eq!(its[0].ret, vec!["Option", "<", "u32", ">"]);
    }

    #[test]
    fn impl_and_mod_nest() {
        let src = "impl Foo { pub fn a(&self) -> Result<(), E> {} fn b(&self) {} }\n\
                   mod inner { pub fn c() {} }";
        let its = items(src);
        assert_eq!(its.len(), 2);
        assert_eq!(its[0].kind, ItemKind::Impl);
        assert_eq!(its[0].children.len(), 2);
        assert_eq!(its[0].children[0].name, "a");
        assert_eq!(its[0].children[0].vis, Vis::Public);
        assert_eq!(its[1].kind, ItemKind::Mod);
        assert_eq!(its[1].children[0].name, "c");
    }

    #[test]
    fn cfg_test_marks_subtree() {
        let src = "#[cfg(test)] mod tests { pub fn helper() -> Result<(), E> {} }\n\
                   pub fn real() {}";
        let its = items(src);
        let mut seen = Vec::new();
        walk(&its, &mut |it, in_test| {
            seen.push((it.name.clone(), in_test));
        });
        assert!(seen.contains(&("helper".into(), true)));
        assert!(seen.contains(&("real".into(), false)));
    }

    #[test]
    fn restricted_visibility() {
        let its = items("pub(crate) fn f() {} pub fn g() {}");
        assert_eq!(its[0].vis, Vis::Restricted);
        assert_eq!(its[1].vis, Vis::Public);
    }

    #[test]
    fn modifiers_before_fn() {
        let its = items("pub const fn f() -> u32 { 1 }\npub async unsafe fn g() {}");
        assert_eq!(its[0].kind, ItemKind::Fn);
        assert_eq!(its[0].name, "f");
        assert_eq!(its[1].name, "g");
    }

    #[test]
    fn use_paths_flatten() {
        let its = items("use std::collections::{HashMap, BTreeMap};");
        assert_eq!(its[0].kind, ItemKind::Use);
        assert!(its[0].path.iter().any(|t| t == "HashMap"));
    }

    #[test]
    fn consts_and_structs_terminate() {
        let its = items(
            "pub const N: usize = 4;\npub struct S { x: u32 }\npub struct T(u32);\npub fn after() {}",
        );
        let names: Vec<_> = its.iter().map(|i| i.name.as_str()).collect();
        assert_eq!(names, vec!["N", "S", "T", "after"]);
    }
}
