//! The lint driver: file discovery, test-region detection, suppression
//! handling, and the allowlist.

use std::fs;
use std::path::{Path, PathBuf};

use crate::items::{self, Item};
use crate::lexer::{self, Lexed};
use crate::tree::{self, Tree};
use crate::{rules, rules2};

/// One lint finding.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct Diagnostic {
    /// Workspace-relative path, `/`-separated.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Rule id (`DET-01`, …, or `LINT-00` for a malformed suppression).
    pub rule: &'static str,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// A checked-in file of blanket suppressions (`lint.allow` at the
/// workspace root). Each line is `RULE <path> <reason…>`; the reason is
/// mandatory. Blank lines and `#` comments are skipped.
#[derive(Clone, Debug, Default)]
pub struct Allowlist {
    entries: Vec<AllowEntry>,
}

#[derive(Clone, Debug)]
struct AllowEntry {
    rule: String,
    path: String,
    /// 1-based line in `lint.allow`, for LINT-01 dead-entry reports.
    line: u32,
}

impl Allowlist {
    /// Parses the allowlist format.
    ///
    /// # Errors
    ///
    /// Returns a message naming the first malformed line (missing path or
    /// missing reason).
    pub fn parse(text: &str) -> Result<Allowlist, String> {
        let mut entries = Vec::new();
        for (idx, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut fields = line.split_whitespace();
            let rule = fields.next().unwrap_or_default().to_string();
            let path = fields
                .next()
                .ok_or_else(|| format!("lint.allow line {}: missing path", idx + 1))?
                .to_string();
            if fields.next().is_none() {
                return Err(format!(
                    "lint.allow line {}: entry `{rule} {path}` has no reason — \
every suppression must say why",
                    idx + 1
                ));
            }
            entries.push(AllowEntry {
                rule,
                path,
                line: (idx + 1) as u32,
            });
        }
        Ok(Allowlist { entries })
    }

    /// Loads `lint.allow` from `root` if present; absent file = empty list.
    ///
    /// # Errors
    ///
    /// Same as [`Allowlist::parse`], plus unreadable-file errors.
    pub fn load(root: &Path) -> Result<Allowlist, String> {
        let path = root.join("lint.allow");
        if !path.exists() {
            return Ok(Allowlist::default());
        }
        let text = fs::read_to_string(&path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        Allowlist::parse(&text)
    }

    fn allows(&self, rule: &str, file: &str) -> bool {
        self.entries
            .iter()
            .any(|e| e.rule == rule && e.path == file)
    }

    /// Like [`Allowlist::allows`], but marks the matching entries in
    /// `used` (parallel to `entries`) so the workspace pass can report
    /// dead suppressions (LINT-01).
    fn allows_tracked(&self, rule: &str, file: &str, used: &mut [bool]) -> bool {
        let mut hit = false;
        for (i, e) in self.entries.iter().enumerate() {
            if e.rule == rule && e.path == file {
                hit = true;
                used[i] = true;
            }
        }
        hit
    }
}

/// Everything the rule matchers need to know about one file.
pub struct FileCtx<'a> {
    /// Workspace-relative `/`-separated path.
    pub rel: &'a str,
    /// The lexed source.
    pub lexed: &'a Lexed,
    /// The brace-matched token tree built from `lexed`.
    pub trees: &'a [Tree],
    /// The parsed item list built from `trees`.
    pub items: &'a [Item],
    /// Whether the whole file is test/bench/example code by location.
    pub is_test_file: bool,
    /// Line ranges (inclusive) covered by `#[cfg(test)]` items.
    pub test_regions: Vec<(u32, u32)>,
}

impl FileCtx<'_> {
    /// Whether `line` is test code (by file location or `#[cfg(test)]`
    /// region).
    pub fn in_test(&self, line: u32) -> bool {
        self.is_test_file
            || self
                .test_regions
                .iter()
                .any(|&(lo, hi)| lo <= line && line <= hi)
    }

    /// Whether the file lives under any of the given directory prefixes.
    pub fn under(&self, prefixes: &[&str]) -> bool {
        prefixes.iter().any(|p| self.rel.starts_with(p))
    }
}

/// An inline suppression: `// metis-lint: allow(RULE): reason`, applying
/// to findings on its own line and the next line.
#[derive(Clone, Debug)]
struct Suppression {
    rule: String,
    line: u32,
    has_reason: bool,
}

const SUPPRESSION_MARKER: &str = "metis-lint:";

fn parse_suppressions(lexed: &Lexed) -> (Vec<Suppression>, Vec<Diagnostic>) {
    let mut sups = Vec::new();
    let mut bad = Vec::new();
    for c in &lexed.comments {
        // Doc comments may *describe* the suppression syntax (this very
        // crate's docs do); only plain comments carry live suppressions.
        if c.doc {
            continue;
        }
        let Some(pos) = c.text.find(SUPPRESSION_MARKER) else {
            continue;
        };
        let rest = c.text[pos + SUPPRESSION_MARKER.len()..].trim_start();
        let Some(rest) = rest.strip_prefix("allow(") else {
            bad.push((c.line, "expected `allow(RULE)` after `metis-lint:`"));
            continue;
        };
        let Some(close) = rest.find(')') else {
            bad.push((c.line, "unclosed `allow(` in suppression"));
            continue;
        };
        let rule = rest[..close].trim().to_string();
        let tail = rest[close + 1..].trim_start();
        let reason = tail.strip_prefix(':').map(str::trim).unwrap_or("");
        sups.push(Suppression {
            rule,
            line: c.line,
            has_reason: !reason.is_empty(),
        });
    }
    let bad = bad
        .into_iter()
        .map(|(line, msg)| Diagnostic {
            file: String::new(), // filled by caller
            line,
            rule: "LINT-00",
            message: msg.to_string(),
        })
        .collect();
    (sups, bad)
}

/// Finds line ranges of `#[cfg(test)]` items (modules, functions, use
/// declarations) so non-test rules can skip them. Conservative: an
/// attribute whose argument list mentions the token `test` marks the
/// following item.
fn find_test_regions(lexed: &Lexed) -> Vec<(u32, u32)> {
    let t = &lexed.tokens;
    let mut regions = Vec::new();
    let mut i = 0;
    while i < t.len() {
        // Outer attribute `#[…]` (inner `#![…]` has a `!` between).
        if t[i].text == "#" && i + 1 < t.len() && t[i + 1].text == "[" {
            let attr_start = i;
            let mut depth = 0usize;
            let mut j = i + 1;
            let mut mentions_test = false;
            let mut is_cfg = false;
            while j < t.len() {
                match t[j].text.as_str() {
                    "[" | "(" => depth += 1,
                    "]" | ")" => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    "cfg" if j == attr_start + 2 => is_cfg = true,
                    "test" => mentions_test = true,
                    _ => {}
                }
                j += 1;
            }
            if is_cfg && mentions_test && j < t.len() {
                // Skip any further attributes, then span the item.
                let mut k = j + 1;
                while k + 1 < t.len() && t[k].text == "#" && t[k + 1].text == "[" {
                    let mut d = 0usize;
                    k += 1;
                    while k < t.len() {
                        match t[k].text.as_str() {
                            "[" | "(" => d += 1,
                            "]" | ")" => {
                                d -= 1;
                                if d == 0 {
                                    break;
                                }
                            }
                            _ => {}
                        }
                        k += 1;
                    }
                    k += 1;
                }
                // The item runs to its matching close brace, or to `;`
                // for brace-less items (`use`, `mod foo;`).
                let mut brace_depth = 0usize;
                let mut end_line = t[attr_start].line;
                while k < t.len() {
                    match t[k].text.as_str() {
                        "{" => brace_depth += 1,
                        "}" => {
                            brace_depth -= 1;
                            if brace_depth == 0 {
                                end_line = t[k].line;
                                break;
                            }
                        }
                        ";" if brace_depth == 0 => {
                            end_line = t[k].line;
                            break;
                        }
                        _ => {}
                    }
                    end_line = t[k].line;
                    k += 1;
                }
                regions.push((t[attr_start].line, end_line));
                i = k + 1;
                continue;
            }
            i = j + 1;
            continue;
        }
        i += 1;
    }
    regions
}

/// Lints one source text as if it lived at `rel`. Exposed so fixture
/// tests can feed synthetic files into any rule's scope.
pub fn check_source(rel: &str, src: &str, allow: &Allowlist) -> Vec<Diagnostic> {
    check_source_tracked(rel, src, allow, None)
}

/// [`check_source`] plus allowlist usage tracking: when `used` is given
/// (parallel to the allowlist's entries), entries that silence a
/// finding are marked so [`run_workspace`] can flag the dead ones.
fn check_source_tracked(
    rel: &str,
    src: &str,
    allow: &Allowlist,
    mut used: Option<&mut [bool]>,
) -> Vec<Diagnostic> {
    let lexed = lexer::lex(src);
    let trees = tree::build(&lexed.tokens);
    let parsed = items::parse_items(&trees);
    let ctx = FileCtx {
        rel,
        lexed: &lexed,
        trees: &trees,
        items: &parsed,
        is_test_file: is_test_path(rel),
        test_regions: find_test_regions(&lexed),
    };

    let mut diags = rules::run_all(&ctx);
    diags.extend(rules2::run_all(&ctx));

    let (sups, mut bad_sups) = parse_suppressions(&lexed);
    for d in &mut bad_sups {
        d.file = rel.to_string();
    }

    // Apply suppressions: a reasoned `allow(RULE)` on line L silences
    // findings of RULE on lines L and L+1; a reasonless one silences
    // nothing and is itself reported. Track which suppressions earned
    // their keep — a reasoned allow that matched nothing is dead weight
    // that would silently swallow a future regression (LINT-01).
    let mut sup_used = vec![false; sups.len()];
    diags.retain(|d| {
        let mut silenced = false;
        for (i, s) in sups.iter().enumerate() {
            if s.has_reason && s.rule == d.rule && (s.line == d.line || s.line + 1 == d.line) {
                silenced = true;
                sup_used[i] = true;
            }
        }
        !silenced
    });
    for (s, s_used) in sups.iter().zip(&sup_used) {
        if !s.has_reason {
            bad_sups.push(Diagnostic {
                file: rel.to_string(),
                line: s.line,
                rule: "LINT-00",
                message: format!(
                    "suppression of {} has no reason — write \
`// metis-lint: allow({}): <why this site is exempt>`",
                    s.rule, s.rule
                ),
            });
        } else if !s_used {
            bad_sups.push(Diagnostic {
                file: rel.to_string(),
                line: s.line,
                rule: "LINT-01",
                message: format!(
                    "dead suppression: `allow({})` matched no finding on this or \
the next line — delete it (stale allows hide future regressions)",
                    s.rule
                ),
            });
        }
    }
    diags.extend(bad_sups);

    // Blanket allowlist entries silence a whole (rule, file) pair.
    diags.retain(|d| match used.as_deref_mut() {
        Some(u) => !allow.allows_tracked(d.rule, &d.file, u),
        None => !allow.allows(d.rule, &d.file),
    });
    diags.sort();
    diags
}

fn is_test_path(rel: &str) -> bool {
    let under = |dir: &str| rel.starts_with(dir) || rel.contains(&format!("/{dir}"));
    under("tests/") || under("benches/") || under("examples/")
}

/// Recursively collects the workspace's own `.rs` files (vendored crates,
/// build output, and lint fixtures excluded), sorted for determinism.
pub fn collect_files(root: &Path) -> Vec<PathBuf> {
    let mut files = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let Ok(entries) = fs::read_dir(&dir) else {
            continue;
        };
        let mut entries: Vec<_> = entries.flatten().map(|e| e.path()).collect();
        entries.sort();
        for path in entries {
            let name = path
                .file_name()
                .and_then(|n| n.to_str())
                .unwrap_or_default();
            if path.is_dir() {
                if matches!(name, "vendor" | "target" | ".git" | "fixtures" | "results") {
                    continue;
                }
                stack.push(path);
            } else if name.ends_with(".rs") {
                files.push(path);
            }
        }
    }
    files.sort();
    files
}

/// Runs the whole pass over a workspace checkout.
///
/// # Errors
///
/// Returns a message for infrastructure problems (unreadable allowlist or
/// source file); lint findings are the `Ok` payload.
pub fn run_workspace(root: &Path) -> Result<Vec<Diagnostic>, String> {
    let allow = Allowlist::load(root)?;
    let mut used = vec![false; allow.entries.len()];
    let mut diags = Vec::new();
    for path in collect_files(root) {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        let src = fs::read_to_string(&path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        diags.extend(check_source_tracked(&rel, &src, &allow, Some(&mut used)));
    }
    // A `lint.allow` entry that silenced nothing across the whole pass
    // is dead: either the code was fixed or the path moved. Both mean
    // the suppression must go before it hides a new finding.
    for (e, e_used) in allow.entries.iter().zip(&used) {
        if !e_used {
            diags.push(Diagnostic {
                file: "lint.allow".to_string(),
                line: e.line,
                rule: "LINT-01",
                message: format!(
                    "dead allowlist entry: `{} {}` matched no finding this run — \
delete the line",
                    e.rule, e.path
                ),
            });
        }
    }
    diags.sort();
    Ok(diags)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allowlist_requires_reason() {
        assert!(Allowlist::parse("FP-01 crates/x.rs exact zero check\n").is_ok());
        let err = Allowlist::parse("FP-01 crates/x.rs\n").unwrap_err();
        assert!(err.contains("no reason"), "{err}");
    }

    #[test]
    fn allowlist_skips_comments_and_blanks() {
        let a = Allowlist::parse("# header\n\nFP-01 a.rs why not\n").unwrap();
        assert!(a.allows("FP-01", "a.rs"));
        assert!(!a.allows("FP-02", "a.rs"));
        assert!(!a.allows("FP-01", "b.rs"));
    }

    #[test]
    fn cfg_test_regions_span_modules() {
        let src =
            "fn a() {}\n#[cfg(test)]\nmod tests {\n    fn b() { x.unwrap(); }\n}\nfn c() {}\n";
        let lexed = lexer::lex(src);
        let regions = find_test_regions(&lexed);
        assert_eq!(regions, vec![(2, 5)]);
    }

    #[test]
    fn cfg_test_region_handles_extra_attrs_and_semicolon_items() {
        let src = "#[cfg(test)]\n#[allow(dead_code)]\nuse std::rc::Rc;\nfn real() {}\n";
        let lexed = lexer::lex(src);
        let regions = find_test_regions(&lexed);
        assert_eq!(regions, vec![(1, 3)]);
    }

    #[test]
    fn cfg_attr_not_test_is_not_a_region() {
        let src = "#![cfg_attr(not(test), deny(clippy::unwrap_used))]\nfn f() {}\n";
        let lexed = lexer::lex(src);
        assert!(find_test_regions(&lexed).is_empty());
    }

    #[test]
    fn suppression_with_reason_silences_next_line() {
        let allow = Allowlist::default();
        let hit = "fn f(v: Vec<i32>) { v.last().unwrap(); }\n";
        let rel = "crates/core/src/x.rs";
        assert!(!check_source(rel, hit, &allow).is_empty());
        let suppressed =
            format!("// metis-lint: allow(PANIC-01): fixture demonstrates suppression\n{hit}");
        assert!(check_source(rel, &suppressed, &allow).is_empty());
    }

    #[test]
    fn suppression_without_reason_is_reported() {
        let allow = Allowlist::default();
        let src = "// metis-lint: allow(PANIC-01)\nfn f(v: Vec<i32>) { v.last().unwrap(); }\n";
        let diags = check_source("crates/core/src/x.rs", src, &allow);
        assert!(diags.iter().any(|d| d.rule == "LINT-00"), "{diags:?}");
        assert!(diags.iter().any(|d| d.rule == "PANIC-01"), "{diags:?}");
    }

    #[test]
    fn test_paths_are_recognized() {
        assert!(is_test_path("tests/golden.rs"));
        assert!(is_test_path("crates/lp/tests/proptests.rs"));
        assert!(is_test_path("crates/bench/benches/maa.rs"));
        assert!(is_test_path("examples/quickstart.rs"));
        assert!(!is_test_path("crates/core/src/framework.rs"));
    }
}
