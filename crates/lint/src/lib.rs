//! `metis-lint`: a syntax-aware workspace lint that mechanically
//! enforces the Metis repo's determinism and accounting invariants.
//!
//! The paper's guarantees (MAA's approximation bound, TAA's Chernoff
//! feasibility) survive only if the implementation keeps exact
//! accounting and bit-identical determinism across thread counts. The
//! code patterns that silently break those — unordered map iteration,
//! NaN-unsafe float comparisons, order-sensitive float reductions,
//! stray wall-clock reads, rogue thread spawns — are all syntactically
//! recognizable, so this crate hand-rolls a small Rust lexer
//! ([`lexer`]), a brace-matched token tree ([`tree`]), and a
//! lightweight item parser ([`items`]), then runs the lexical rules
//! ([`rules`]) and the syntax-aware rules ([`rules2`]) over every
//! workspace source file ([`engine`]). A separate mode ([`artifacts`])
//! cross-checks code against committed artifacts (telemetry schema
//! fixture, DESIGN.md catalogs, README flag docs) so the prose can
//! never silently drift from the machine. Findings also render as SARIF
//! ([`sarif`]) for CI annotation upload.
//!
//! Run it three ways:
//!
//! ```text
//! cargo run -p metis-lint -- --workspace              # CLI, exit 1 on findings
//! cargo run -p metis-lint -- --workspace --artifacts  # plus drift checks
//! cargo test -p metis-lint                            # the same pass as a #[test]
//! ```
//!
//! Suppressions: inline `// metis-lint: allow(RULE): reason` (reason
//! mandatory — a bare `allow` is itself the finding `LINT-00`), or a
//! `lint.allow` file at the workspace root with `RULE path reason`
//! lines. Suppressions must stay live: any allow that matches zero
//! findings is itself the finding `LINT-01`. The rule catalog and
//! policy live in `DESIGN.md` §8.

pub mod artifacts;
pub mod engine;
pub mod items;
pub mod lexer;
pub mod rules;
pub mod rules2;
pub mod sarif;
pub mod tree;

pub use engine::{check_source, run_workspace, Allowlist, Diagnostic};
