//! `metis-lint`: a token-level workspace lint that mechanically enforces
//! the Metis repo's determinism and accounting invariants.
//!
//! The paper's guarantees (MAA's approximation bound, TAA's Chernoff
//! feasibility) survive only if the implementation keeps exact
//! accounting and bit-identical determinism across thread counts. The
//! code patterns that silently break those — unordered map iteration,
//! NaN-unsafe float comparisons, stray wall-clock reads, rogue thread
//! spawns — are all lexically recognizable, so this crate hand-rolls a
//! small Rust lexer ([`lexer`]) and runs eight rule matchers ([`rules`])
//! over every workspace source file ([`engine`]).
//!
//! Run it two ways:
//!
//! ```text
//! cargo run -p metis-lint -- --workspace      # CLI, exit 1 on findings
//! cargo test -p metis-lint                    # the same pass as a #[test]
//! ```
//!
//! Suppressions: inline `// metis-lint: allow(RULE): reason` (reason
//! mandatory — a bare `allow` is itself the finding `LINT-00`), or a
//! `lint.allow` file at the workspace root with `RULE path reason`
//! lines. The rule catalog and policy live in `DESIGN.md` §8.

pub mod engine;
pub mod lexer;
pub mod rules;

pub use engine::{check_source, run_workspace, Allowlist, Diagnostic};
