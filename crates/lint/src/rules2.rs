//! Second-generation rule matchers: syntax-aware analyses on the token
//! tree ([`crate::tree`]) and item parser ([`crate::items`]) that the
//! flat lexical rules in [`crate::rules`] cannot express.
//!
//! | rule | what it catches |
//! |---|---|
//! | `DET-03` | `for` loops over unordered sources whose body does float accumulation |
//! | `FP-03`  | `.sum::<f64>()` / float-`fold` chains fed by unordered sources |
//! | `PANIC-02` | arithmetic-computed slice indices in solver paths without a bound check or `// INDEX:` note |
//! | `API-01` | pub `Result`-returning fns in core/lp without an `# Errors` doc section |
//!
//! Scoping and the justification escape hatches are documented per rule
//! and in `DESIGN.md` §8.

use crate::engine::{Diagnostic, FileCtx};
use crate::items::{self, Item, ItemKind, Vis};
use crate::lexer::TokenKind;
use crate::rules::attribute_lines;
use crate::tree::{Delim, Group, Tree};

/// The one file allowed to fan out and reduce in parallel.
const REDUCTION_HOME: &str = "crates/core/src/parallel.rs";
/// Directories whose slice indexing must be visibly bounded.
const INDEX_PATHS: &[&str] = &["crates/core/src/", "crates/lp/src/"];
/// Crates whose public `Result` APIs must document failure modes.
const API_DOC_PATHS: &[&str] = &["crates/core/src/", "crates/lp/src/"];

/// Type and method names whose iteration order is not deterministic.
const UNORDERED_MARKERS: &[&str] = &[
    "HashMap",
    "HashSet",
    "par_iter",
    "par_iter_mut",
    "into_par_iter",
    "par_bridge",
    "par_chunks",
    "par_chunks_mut",
];

/// Runs every v2 rule against one file.
pub fn run_all(ctx: &FileCtx<'_>) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let sets = IdentSets::collect(ctx);
    det03_unordered_float_loops(ctx, &sets, &mut out);
    fp03_unordered_float_reductions(ctx, &sets, &mut out);
    panic02_computed_indices(ctx, &mut out);
    api01_result_errors_doc(ctx, &mut out);
    out
}

fn diag(ctx: &FileCtx<'_>, line: u32, rule: &'static str, message: String) -> Diagnostic {
    Diagnostic {
        file: ctx.rel.to_string(),
        line,
        rule,
        message,
    }
}

/// Per-file identifier classification, inferred from declaration-shaped
/// token patterns (`let x: HashMap<…>`, `m: &HashMap<…>` parameters,
/// `let mut acc = 0.0`). Heuristic by design: no type inference, but
/// declarations are where the type names are spelled out.
struct IdentSets {
    /// Idents bound to `HashMap`/`HashSet` values.
    unordered: Vec<String>,
    /// Idents bound to `f64`/`f32` values.
    float: Vec<String>,
}

impl IdentSets {
    fn collect(ctx: &FileCtx<'_>) -> IdentSets {
        let toks = &ctx.lexed.tokens;
        let mut unordered = Vec::new();
        let mut float = Vec::new();
        for (i, t) in toks.iter().enumerate() {
            if t.kind != TokenKind::Ident {
                continue;
            }
            match t.text.as_str() {
                // `name : … HashMap` (param or let-with-annotation) and
                // `name = HashMap::new()` both put the bound ident just
                // before the nearest `:`/`=` to the left.
                "HashMap" | "HashSet" => {
                    if let Some(name) = bound_ident_before(ctx, i) {
                        unordered.push(name);
                    }
                }
                // Only annotation position (`name : f64`), not casts
                // or turbofish.
                "f64" | "f32"
                    if i >= 2
                        && toks[i - 1].text == ":"
                        && toks[i - 2].kind == TokenKind::Ident =>
                {
                    float.push(toks[i - 2].text.clone());
                }
                _ => {}
            }
            // `let mut name = <float literal>`.
            if t.text == "let"
                && toks.get(i + 1).is_some_and(|n| n.text == "mut")
                && toks.get(i + 2).is_some_and(|n| n.kind == TokenKind::Ident)
                && toks.get(i + 3).is_some_and(|n| n.text == "=")
                && toks.get(i + 4).is_some_and(|n| n.kind == TokenKind::Float)
            {
                float.push(toks[i + 2].text.clone());
            }
        }
        unordered.sort_unstable();
        unordered.dedup();
        float.sort_unstable();
        float.dedup();
        IdentSets { unordered, float }
    }

    fn is_unordered(&self, name: &str) -> bool {
        UNORDERED_MARKERS.contains(&name) || self.unordered.binary_search(&name.to_string()).is_ok()
    }

    fn is_float(&self, name: &str) -> bool {
        self.float.binary_search(&name.to_string()).is_ok()
    }
}

/// Walks left from the `HashMap`/`HashSet` token at `i` to the ident
/// the declaration binds: the ident just before the nearest `:` or `=`
/// within the preceding few tokens.
fn bound_ident_before(ctx: &FileCtx<'_>, i: usize) -> Option<String> {
    let toks = &ctx.lexed.tokens;
    let lo = i.saturating_sub(12);
    for j in (lo..i).rev() {
        match toks[j].text.as_str() {
            ":" | "=" => {
                let prev = toks.get(j.checked_sub(1)?)?;
                if prev.kind == TokenKind::Ident {
                    return Some(prev.text.clone());
                }
                return None;
            }
            ";" | "{" | "}" => return None,
            _ => {}
        }
    }
    None
}

/// `DET-03`: a `for` loop over an unordered source (`HashMap`/`HashSet`
/// value or a `par_*` iterator) whose body accumulates into a float is
/// an order-sensitive reduction — float addition does not commute
/// bitwise, so the result varies run to run. Only
/// `core/src/parallel.rs` (the index-ordered reduction choke point) may
/// do this.
fn det03_unordered_float_loops(ctx: &FileCtx<'_>, sets: &IdentSets, out: &mut Vec<Diagnostic>) {
    if ctx.rel == REDUCTION_HOME {
        return;
    }
    walk_groups(ctx.trees, &mut |trees| {
        let mut i = 0usize;
        while i < trees.len() {
            if trees[i].atom_text() != Some("for") {
                i += 1;
                continue;
            }
            let line = trees[i].line();
            // A loop `for <pat> in <iter> { … }` has an `in` before its
            // brace; `impl T for X {…}` and `for<'a>` do not.
            let mut j = i + 1;
            let mut in_at = None;
            let mut body_at = None;
            while j < trees.len() {
                match &trees[j] {
                    Tree::Atom(t) if t.text == "in" && in_at.is_none() => in_at = Some(j),
                    Tree::Atom(t) if t.text == ";" => break,
                    Tree::Group(g) if g.delim == Delim::Brace => {
                        body_at = Some(j);
                        break;
                    }
                    _ => {}
                }
                j += 1;
            }
            let (Some(in_at), Some(body_at)) = (in_at, body_at) else {
                i += 1;
                continue;
            };
            if ctx.in_test(line) {
                i = body_at + 1;
                continue;
            }
            let mut iter_toks = Vec::new();
            crate::tree::flatten(&trees[in_at + 1..body_at], &mut iter_toks);
            let unordered = iter_toks
                .iter()
                .any(|t| t.kind == TokenKind::Ident && sets.is_unordered(&t.text));
            if unordered {
                let body = trees[body_at].group().expect("checked brace group");
                if let Some(acc_line) = float_accumulation_line(body, sets) {
                    out.push(diag(
                        ctx,
                        acc_line,
                        "DET-03",
                        "float accumulation inside a loop over an unordered source: \
iteration order varies run to run and float `+=` does not commute bitwise; \
collect into an index-ordered Vec and reduce via `core/src/parallel.rs`"
                            .into(),
                    ));
                }
            }
            i = body_at + 1;
        }
    });
}

/// Finds a float compound-assignment inside a loop body: a `+=`/`-=`/
/// `*=` whose statement mentions a float literal or a float-typed
/// ident. Returns the line of the first hit.
fn float_accumulation_line(body: &Group, sets: &IdentSets) -> Option<u32> {
    let toks = body.flat_tokens();
    for (i, t) in toks.iter().enumerate() {
        if !matches!(t.text.as_str(), "+=" | "-=" | "*=") {
            continue;
        }
        // The statement window around the operator.
        let start = toks[..i]
            .iter()
            .rposition(|t| t.text == ";")
            .map_or(0, |p| p + 1);
        let end = toks[i..]
            .iter()
            .position(|t| t.text == ";")
            .map_or(toks.len(), |p| i + p);
        let window = &toks[start..end];
        let floaty = window.iter().any(|t| {
            t.kind == TokenKind::Float || (t.kind == TokenKind::Ident && sets.is_float(&t.text))
        });
        if floaty {
            return Some(t.line);
        }
    }
    None
}

/// `FP-03`: `.sum::<f64>()`, `.product::<f64>()`, or `.fold(0.0, …)`
/// at the end of an iterator chain that starts from an unordered source
/// — same hazard as DET-03, in combinator form.
fn fp03_unordered_float_reductions(ctx: &FileCtx<'_>, sets: &IdentSets, out: &mut Vec<Diagnostic>) {
    if ctx.rel == REDUCTION_HOME {
        return;
    }
    let toks = &ctx.lexed.tokens;
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokenKind::Ident || ctx.in_test(t.line) {
            continue;
        }
        let reduction = match t.text.as_str() {
            // `.sum::<f64>()` / `.product::<f32>()`.
            "sum" | "product" => {
                toks.get(i + 1).is_some_and(|n| n.text == "::")
                    && toks.get(i + 2).is_some_and(|n| n.text == "<")
                    && toks
                        .get(i + 3)
                        .is_some_and(|n| n.text == "f64" || n.text == "f32")
            }
            // `.fold(0.0, …)`.
            "fold" => {
                toks.get(i + 1).is_some_and(|n| n.text == "(")
                    && toks.get(i + 2).is_some_and(|n| n.kind == TokenKind::Float)
            }
            _ => false,
        };
        if !reduction || i == 0 || toks[i - 1].text != "." {
            continue;
        }
        if chain_has_unordered_source(ctx, i - 1, sets) {
            out.push(diag(
                ctx,
                t.line,
                "FP-03",
                format!(
                    "float `{}` over an unordered source: the reduction order is \
nondeterministic; materialize into an ordered Vec first (or reduce via \
`core/src/parallel.rs`)",
                    t.text
                ),
            ));
        }
    }
}

/// Walks the method chain leftward from the `.` at `dot` and reports
/// whether any ident along it (receiver, combinator, or closure body)
/// is an unordered source.
fn chain_has_unordered_source(ctx: &FileCtx<'_>, dot: usize, sets: &IdentSets) -> bool {
    let toks = &ctx.lexed.tokens;
    let mut j = dot;
    while j > 0 {
        j -= 1;
        match toks[j].text.as_str() {
            ")" | "]" => {
                // Skip the balanced group, scanning its contents.
                let close = toks[j].text.clone();
                let open = if close == ")" { "(" } else { "[" };
                let mut depth = 1usize;
                while j > 0 && depth > 0 {
                    j -= 1;
                    if toks[j].text == close {
                        depth += 1;
                    } else if toks[j].text == open {
                        depth -= 1;
                    } else if toks[j].kind == TokenKind::Ident && sets.is_unordered(&toks[j].text) {
                        return true;
                    }
                }
            }
            "." | "::" | "?" | "<" | ">" | "&" => {}
            _ => {
                if toks[j].kind == TokenKind::Ident {
                    if sets.is_unordered(&toks[j].text) {
                        return true;
                    }
                    // An ident continues the chain (receiver or method
                    // name); anything else ends it.
                } else {
                    return false;
                }
            }
        }
    }
    false
}

/// `PANIC-02`: slice indexing with an arithmetic-computed index in a
/// solver path. `a[i * m + r]` panics (or silently reads the wrong
/// cell) when the arithmetic drifts from the slice's layout; the site
/// must carry a visible bound check (`assert!`/`debug_assert!` within
/// three lines), clamp the index (`.min(…)` inside the brackets), or
/// justify the invariant with an adjacent `// INDEX:` comment.
fn panic02_computed_indices(ctx: &FileCtx<'_>, out: &mut Vec<Diagnostic>) {
    if !ctx.under(INDEX_PATHS) {
        return;
    }
    walk_groups(ctx.trees, &mut |trees| {
        for k in 1..trees.len() {
            let Some(g) = trees[k].group() else { continue };
            if g.delim != Delim::Bracket {
                continue;
            }
            // Index position: the bracket follows an expression —
            // an ident (`load[…]`) or a call/index result (`f(x)[…]`,
            // `a[i][…]`). Type positions (`&mut [f64]`), array
            // literals (`= [0; 4]`), attributes (`#[…]`), and macro
            // brackets (`vec![…]`) all follow something else.
            let indexes_expr = match &trees[k - 1] {
                Tree::Atom(t) => {
                    t.kind == TokenKind::Ident
                        && !matches!(
                            t.text.as_str(),
                            "mut"
                                | "dyn"
                                | "ref"
                                | "in"
                                | "as"
                                | "return"
                                | "break"
                                | "else"
                                | "impl"
                                | "where"
                                | "const"
                                | "static"
                                | "use"
                                | "pub"
                                | "move"
                        )
                }
                Tree::Group(prev) => prev.delim != Delim::Brace,
            };
            if !indexes_expr {
                continue;
            }
            let line = g.open_line;
            if ctx.in_test(line) {
                continue;
            }
            if !has_arithmetic_index(g) {
                continue;
            }
            if index_is_justified(ctx, g, line) {
                continue;
            }
            out.push(diag(
                ctx,
                line,
                "PANIC-02",
                "arithmetic-computed slice index in a solver path without a visible \
bound: add an `assert!`/`debug_assert!` within three lines, clamp with \
`.min(…)`, or justify with an adjacent `// INDEX:` comment"
                    .into(),
            ));
        }
    });
}

/// Whether the bracket group computes its index arithmetically: a
/// binary `+ - * / %` at the group's own level (nested bracket groups
/// are separate index expressions, checked on their own). Ranges
/// (`a[lo..hi]`) are excluded — slicing is a different pattern.
fn has_arithmetic_index(g: &Group) -> bool {
    let mut arithmetic = false;
    let mut prev_is_operand = false;
    for t in &g.trees {
        match t {
            Tree::Atom(tok) => {
                if tok.text == ".." || tok.text == "..=" {
                    return false;
                }
                if matches!(tok.text.as_str(), "+" | "-" | "*" | "/" | "%") {
                    // Binary only: `[*p]` and `[-1]` have no left
                    // operand and are deref/negation, not arithmetic.
                    if prev_is_operand {
                        arithmetic = true;
                    }
                    prev_is_operand = false;
                } else {
                    prev_is_operand = matches!(
                        tok.kind,
                        TokenKind::Ident | TokenKind::Int | TokenKind::Float
                    );
                }
            }
            Tree::Group(inner) => {
                // A paren group closes an operand (`(i + 1) * m`); its
                // *contents* also count (`a[idx(i) + 1]` is computed).
                if inner.delim == Delim::Paren
                    && inner
                        .flat_tokens()
                        .iter()
                        .any(|t| matches!(t.text.as_str(), "+" | "-" | "*" | "/" | "%"))
                {
                    arithmetic = true;
                }
                prev_is_operand = true;
            }
        }
    }
    arithmetic
}

/// The three PANIC-02 escape hatches.
fn index_is_justified(ctx: &FileCtx<'_>, g: &Group, line: u32) -> bool {
    // (a) `// INDEX: reason` on the same line or up to three above.
    let lo = line.saturating_sub(3);
    if ctx
        .lexed
        .comments
        .iter()
        .any(|c| c.text.contains("INDEX:") && c.end_line >= lo && c.end_line <= line)
    {
        return true;
    }
    // (b) an assert-family call within three lines above (or on the
    // line itself — the index may sit inside the assert).
    if ctx.lexed.tokens.iter().any(|t| {
        t.kind == TokenKind::Ident
            && (t.text.starts_with("assert") || t.text.starts_with("debug_assert"))
            && t.line >= lo
            && t.line <= line
    }) {
        return true;
    }
    // (c) the index clamps itself.
    g.flat_tokens().iter().any(|t| t.text == "min")
}

/// `API-01`: a public `Result`-returning fn in metis-core/metis-lp must
/// document its failure modes under an `# Errors` doc section — the
/// error taxonomy (§6c) is part of the API contract.
fn api01_result_errors_doc(ctx: &FileCtx<'_>, out: &mut Vec<Diagnostic>) {
    if !ctx.under(API_DOC_PATHS) {
        return;
    }
    let attr_lines = attribute_lines(&ctx.lexed.tokens);
    items::walk(ctx.items, &mut |item: &Item, in_test| {
        if item.kind != ItemKind::Fn || item.vis != Vis::Public || in_test || ctx.in_test(item.line)
        {
            return;
        }
        if !returns_result(&item.ret) {
            return;
        }
        let docs = doc_text_above(ctx, &attr_lines, item.line);
        if !docs.contains("# Errors") {
            out.push(diag(
                ctx,
                item.line,
                "API-01",
                format!(
                    "public fn `{}` returns `Result` but its docs have no `# Errors` \
section; document when and why it fails",
                    item.name
                ),
            ));
        }
    });
}

/// Whether a return-type token list is `Result`-shaped: `Result` (or a
/// path ending in it) appears before any `<` — `impl Iterator<Item =
/// Result<…>>` does not count, the fn itself returns the iterator.
fn returns_result(ret: &[String]) -> bool {
    ret.iter()
        .take_while(|t| t.as_str() != "<")
        .any(|t| t == "Result")
}

/// Collects the text of the contiguous doc comments attached to the
/// item at `item_line`, walking upward through attributes and plain
/// comments (the same attachment walk DOC-01 uses, but keeping text).
fn doc_text_above(ctx: &FileCtx<'_>, attr_lines: &[u32], item_line: u32) -> String {
    let mut collected: Vec<&str> = Vec::new();
    let mut l = item_line.saturating_sub(1);
    while l >= 1 {
        if let Some(c) = ctx.lexed.comments.iter().find(|c| c.doc && c.end_line == l) {
            collected.push(&c.text);
            l = c.line.saturating_sub(1);
            continue;
        }
        let transparent = attr_lines.binary_search(&l).is_ok()
            || ctx.lexed.comments.iter().any(|c| !c.doc && c.end_line == l);
        if !transparent {
            break;
        }
        l -= 1;
    }
    collected.reverse();
    collected.join("\n")
}

/// Applies `f` to every sibling list in the tree: the root list and the
/// children of every group, at any depth.
fn walk_groups<'a>(trees: &'a [Tree], f: &mut impl FnMut(&'a [Tree])) {
    f(trees);
    for t in trees {
        if let Tree::Group(g) = t {
            walk_groups(&g.trees, f);
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::engine::{check_source, Allowlist};

    fn rules_hit(rel: &str, src: &str) -> Vec<&'static str> {
        let allow = Allowlist::default();
        let mut rules: Vec<_> = check_source(rel, src, &allow)
            .into_iter()
            .map(|d| d.rule)
            .collect();
        rules.dedup();
        rules
    }

    #[test]
    fn det03_catches_hashmap_value_loops() {
        let src = "use std::collections::HashMap;\n\
                   fn f(m: &HashMap<u32, f64>) -> f64 {\n\
                       let mut total = 0.0;\n\
                       for v in m.values() { total += v; }\n\
                       total\n\
                   }\n";
        assert!(rules_hit("crates/bench/src/x.rs", src).contains(&"DET-03"));
    }

    #[test]
    fn det03_ignores_ordered_and_int_loops() {
        let ordered = "use std::collections::BTreeMap;\n\
                       fn f(m: &BTreeMap<u32, f64>) -> f64 {\n\
                           let mut total = 0.0;\n\
                           for v in m.values() { total += v; }\n\
                           total\n\
                       }\n";
        assert_eq!(
            rules_hit("crates/bench/src/x.rs", ordered),
            Vec::<&str>::new()
        );
        let int_acc = "use std::collections::HashMap;\n\
                       fn f(m: &HashMap<u32, u64>) -> u64 {\n\
                           let mut n = 0u64;\n\
                           for v in m.values() { n += v; }\n\
                           n\n\
                       }\n";
        assert_eq!(
            rules_hit("crates/bench/src/x.rs", int_acc),
            Vec::<&str>::new()
        );
    }

    #[test]
    fn det03_is_not_fooled_by_impl_for() {
        let src = "struct S;\nimpl std::fmt::Debug for S {\n\
                   fn fmt(&self, f: &mut std::fmt::Formatter) -> std::fmt::Result { Ok(()) }\n}\n";
        assert_eq!(rules_hit("crates/bench/src/x.rs", src), Vec::<&str>::new());
    }

    #[test]
    fn fp03_catches_turbofish_sum_from_par_iter() {
        let src = "fn f(v: &[f64]) -> f64 { v.par_iter().map(|x| x * 2.0).sum::<f64>() }\n";
        assert_eq!(rules_hit("crates/bench/src/x.rs", src), vec!["FP-03"]);
    }

    #[test]
    fn fp03_catches_float_fold_from_hashmap_ident() {
        let src = "use std::collections::HashMap;\n\
                   fn f(m: &HashMap<u32, f64>) -> f64 {\n\
                       m.values().fold(0.0, |a, b| a + b)\n\
                   }\n";
        assert_eq!(rules_hit("crates/bench/src/x.rs", src), vec!["FP-03"]);
    }

    #[test]
    fn fp03_allows_ordered_sources() {
        let src = "fn f(v: &[f64]) -> f64 { v.iter().sum::<f64>() }\n";
        assert_eq!(rules_hit("crates/bench/src/x.rs", src), Vec::<&str>::new());
    }

    #[test]
    fn panic02_catches_flat_matrix_indexing() {
        let src = "fn f(a: &[f64], i: usize, m: usize) -> f64 { a[i * m + 1] }\n";
        assert_eq!(rules_hit("crates/lp/src/x.rs", src), vec!["PANIC-02"]);
        // Same code outside the solver paths is fine.
        assert_eq!(rules_hit("crates/bench/src/x.rs", src), Vec::<&str>::new());
    }

    #[test]
    fn panic02_escape_hatches() {
        let idx_comment = "fn f(a: &[f64], i: usize, m: usize) -> f64 {\n\
                           // INDEX: i < rows and m is the stride, by construction\n\
                           a[i * m + 1]\n}\n";
        assert_eq!(
            rules_hit("crates/lp/src/x.rs", idx_comment),
            Vec::<&str>::new()
        );
        let asserted = "fn f(a: &[f64], i: usize, m: usize) -> f64 {\n\
                        debug_assert!(i * m + 1 < a.len());\n\
                        a[i * m + 1]\n}\n";
        assert_eq!(
            rules_hit("crates/lp/src/x.rs", asserted),
            Vec::<&str>::new()
        );
        let clamped = "fn f(a: &[f64], i: usize, n: usize) -> f64 { a[(i + 1).min(n)] }\n";
        assert_eq!(rules_hit("crates/lp/src/x.rs", clamped), Vec::<&str>::new());
    }

    #[test]
    fn panic02_skips_plain_and_range_indexing() {
        let plain = "fn f(a: &[f64], i: usize) -> f64 { a[i] }\n";
        assert_eq!(rules_hit("crates/lp/src/x.rs", plain), Vec::<&str>::new());
        let range = "fn f(a: &[f64], i: usize, m: usize) -> &[f64] { &a[i * m..(i + 1) * m] }\n";
        assert_eq!(rules_hit("crates/lp/src/x.rs", range), Vec::<&str>::new());
        let types = "fn f(x: &mut [f64]) -> [u8; 4] { [0; 4] }\n";
        assert_eq!(rules_hit("crates/lp/src/x.rs", types), Vec::<&str>::new());
    }

    #[test]
    fn api01_requires_errors_section() {
        let missing = "/// Loads the thing.\npub fn load() -> Result<u32, String> { Ok(1) }\n";
        assert_eq!(rules_hit("crates/lp/src/x.rs", missing), vec!["API-01"]);
        let documented = "/// Loads the thing.\n///\n/// # Errors\n///\n\
                          /// Returns a message when the file is unreadable.\n\
                          pub fn load() -> Result<u32, String> { Ok(1) }\n";
        assert_eq!(
            rules_hit("crates/lp/src/x.rs", documented),
            Vec::<&str>::new()
        );
    }

    #[test]
    fn api01_skips_non_result_restricted_and_methods_in_test() {
        let unit = "/// Doc.\npub fn f() {}\n";
        assert_eq!(rules_hit("crates/lp/src/x.rs", unit), Vec::<&str>::new());
        let restricted = "pub(crate) fn f() -> Result<(), E> { Ok(()) }\n";
        assert_eq!(
            rules_hit("crates/lp/src/x.rs", restricted),
            Vec::<&str>::new()
        );
        let iter =
            "/// Doc.\npub fn f() -> impl Iterator<Item = Result<u32, E>> { std::iter::empty() }\n";
        assert_eq!(rules_hit("crates/lp/src/x.rs", iter), Vec::<&str>::new());
        let in_test = "#[cfg(test)]\nmod tests {\n    pub fn f() -> Result<(), E> { Ok(()) }\n}\n";
        assert_eq!(rules_hit("crates/lp/src/x.rs", in_test), Vec::<&str>::new());
    }

    #[test]
    fn api01_sees_impl_methods() {
        let src = "struct S;\nimpl S {\n    /// Doc.\n    pub fn go(&self) -> Result<(), E> { Ok(()) }\n}\n";
        assert_eq!(rules_hit("crates/core/src/x.rs", src), vec!["API-01"]);
    }
}
