//! CLI entry point: `cargo run -p metis-lint -- --workspace`.

use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> ! {
    eprintln!("usage: metis-lint --workspace [--root <dir>]");
    std::process::exit(2);
}

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut workspace = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--workspace" => workspace = true,
            "--root" => match args.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => usage(),
            },
            _ => usage(),
        }
    }
    if !workspace {
        usage();
    }

    // Default root: the workspace the lint crate itself lives in, so the
    // binary works from any cwd under `cargo run -p metis-lint`.
    let root = root.unwrap_or_else(|| {
        let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
        manifest
            .parent()
            .and_then(|p| p.parent())
            .map(PathBuf::from)
            .unwrap_or_else(|| PathBuf::from("."))
    });

    match metis_lint::run_workspace(&root) {
        Ok(diags) if diags.is_empty() => {
            println!("metis-lint: clean ({} rules, 0 findings)", 8);
            ExitCode::SUCCESS
        }
        Ok(diags) => {
            for d in &diags {
                println!("{d}");
            }
            println!("metis-lint: {} finding(s)", diags.len());
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("metis-lint: error: {e}");
            ExitCode::from(2)
        }
    }
}
