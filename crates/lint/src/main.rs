//! CLI entry point: `cargo run -p metis-lint -- --workspace [--artifacts]`.

use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> ! {
    eprintln!("usage: metis-lint --workspace [--artifacts] [--sarif <out.sarif>] [--root <dir>]");
    std::process::exit(2);
}

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut workspace = false;
    let mut artifacts = false;
    let mut sarif_out: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--workspace" => workspace = true,
            "--artifacts" => artifacts = true,
            "--sarif" => match args.next() {
                Some(path) => sarif_out = Some(PathBuf::from(path)),
                None => usage(),
            },
            "--root" => match args.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => usage(),
            },
            _ => usage(),
        }
    }
    if !workspace {
        usage();
    }

    // Default root: the workspace the lint crate itself lives in, so the
    // binary works from any cwd under `cargo run -p metis-lint`.
    let root = root.unwrap_or_else(|| {
        let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
        manifest
            .parent()
            .and_then(|p| p.parent())
            .map(PathBuf::from)
            .unwrap_or_else(|| PathBuf::from("."))
    });

    let mut diags = match metis_lint::run_workspace(&root) {
        Ok(diags) => diags,
        Err(e) => {
            eprintln!("metis-lint: error: {e}");
            return ExitCode::from(2);
        }
    };
    let mut legs = "lint rules".to_string();
    if artifacts {
        match metis_lint::artifacts::run_artifacts(&root) {
            Ok(more) => diags.extend(more),
            Err(e) => {
                eprintln!("metis-lint: error: {e}");
                return ExitCode::from(2);
            }
        }
        legs.push_str(" + artifact checks");
    }
    diags.sort();

    if let Some(path) = sarif_out {
        let doc = metis_lint::sarif::to_sarif(&diags);
        if let Err(e) = std::fs::write(&path, doc) {
            eprintln!("metis-lint: error: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
        println!("metis-lint: SARIF written to {}", path.display());
    }

    if diags.is_empty() {
        println!("metis-lint: clean ({legs}, 0 findings)");
        ExitCode::SUCCESS
    } else {
        for d in &diags {
            println!("{d}");
        }
        println!("metis-lint: {} finding(s)", diags.len());
        ExitCode::FAILURE
    }
}
