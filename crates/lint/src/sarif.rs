//! SARIF 2.1.0 export so lint findings surface as code annotations in
//! CI (GitHub's code-scanning upload consumes exactly this shape).
//! Hand-serialized — the document is small and fixed, and the lint
//! crate stays dependency-free.

use crate::engine::Diagnostic;

const SCHEMA: &str = "https://json.schemastore.org/sarif-2.1.0.json";

/// Renders the findings (lint and artifact checks alike) as a complete
/// single-run SARIF 2.1.0 document.
pub fn to_sarif(diags: &[Diagnostic]) -> String {
    let mut rule_ids: Vec<&str> = diags.iter().map(|d| d.rule).collect();
    rule_ids.sort_unstable();
    rule_ids.dedup();
    let rules = rule_ids
        .iter()
        .map(|id| format!("{{\"id\":{}}}", escape(id)))
        .collect::<Vec<_>>()
        .join(",");
    let results = diags
        .iter()
        .map(|d| {
            format!(
                "{{\"ruleId\":{rule},\"level\":\"error\",\"message\":{{\"text\":{msg}}},\
\"locations\":[{{\"physicalLocation\":{{\"artifactLocation\":{{\"uri\":{uri},\
\"uriBaseId\":\"%SRCROOT%\"}},\"region\":{{\"startLine\":{line}}}}}}}]}}",
                rule = escape(d.rule),
                msg = escape(&d.message),
                uri = escape(&d.file),
                line = d.line.max(1),
            )
        })
        .collect::<Vec<_>>()
        .join(",");
    format!(
        "{{\"$schema\":{schema},\"version\":\"2.1.0\",\"runs\":[{{\"tool\":{{\"driver\":\
{{\"name\":\"metis-lint\",\"informationUri\":\
\"https://example.invalid/metis-lint\",\"rules\":[{rules}]}}}},\
\"results\":[{results}]}}]}}",
        schema = escape(SCHEMA),
    )
}

/// JSON string literal (quotes included) for `s`.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sarif_document_is_wellformed() {
        let diags = vec![
            Diagnostic {
                file: "crates/core/src/x.rs".into(),
                line: 7,
                rule: "DET-01",
                message: "no \"hash\" maps\nhere".into(),
            },
            Diagnostic {
                file: "lint.allow".into(),
                line: 2,
                rule: "LINT-01",
                message: "dead entry".into(),
            },
        ];
        let doc = to_sarif(&diags);
        assert!(doc.contains("\"version\":\"2.1.0\""));
        assert!(doc.contains("\"ruleId\":\"DET-01\""));
        assert!(doc.contains("\"startLine\":7"));
        assert!(doc.contains("no \\\"hash\\\" maps\\nhere"));
        // Exactly one rules array with both ids, deduplicated and sorted.
        assert!(doc.contains("{\"id\":\"DET-01\"},{\"id\":\"LINT-01\"}"));
        // Balanced braces — cheap structural sanity without a JSON dep.
        let open = doc.matches('{').count();
        let close = doc.matches('}').count();
        assert_eq!(open, close);
    }

    #[test]
    fn empty_findings_still_render_a_run() {
        let doc = to_sarif(&[]);
        assert!(doc.contains("\"results\":[]"));
    }
}
