fn is_unset(x: f64) -> bool {
    x.abs() < 1e-12
}
