//! Lexer hardening fixture: every literal form that used to be able to
//! desynchronize string stripping. None of the rule-triggering words
//! below are real code, so a correct lexer reports nothing.

fn literals() -> usize {
    let raw = r#"HashMap::new() and Instant::now() and x.unwrap()"#;
    let nested = r##"a "#" quote: spawn(|| {}) "##;
    let bytes = b"SystemTime::now() == 0.0";
    let raw_bytes = br#"partial_cmp(&x).unwrap()"#;
    let byte_char = b'"';
    let continued = "an unsafe \
        continuation line mentioning panic!()";
    /* block comments /* nest in Rust */ so unwrap() here is comment text */
    raw.len() + nested.len() + bytes.len() + raw_bytes.len() + byte_char as usize + continued.len()
}

fn r#return(v: &[u32]) -> usize {
    // Raw identifiers must lex as identifiers, not `r` + strays.
    v.len()
}
