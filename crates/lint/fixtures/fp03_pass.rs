fn slice_profit(weights: &[f64]) -> f64 {
    // Ordered iteration: slice order is the reduction order.
    weights.iter().map(|w| w * 2.0).sum::<f64>()
}

fn int_count(xs: &[u64]) -> u64 {
    // Integer sums commute exactly, unordered or not.
    xs.iter().sum::<u64>()
}
