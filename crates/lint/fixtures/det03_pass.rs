use std::collections::{BTreeMap, HashMap};

// Ordered source: same accumulation, deterministic order.
fn total_load(loads: &BTreeMap<u32, f64>) -> f64 {
    let mut total = 0.0;
    for v in loads.values() {
        total += v;
    }
    total
}

// Unordered source, but an integer accumulator: order-insensitive.
fn count_busy(busy: &HashMap<u32, u64>) -> u64 {
    let mut n = 0u64;
    for v in busy.values() {
        n += v;
    }
    n
}
