/// Parses a solver option string.
///
/// # Errors
///
/// Returns a message when `text` is not an unsigned integer.
pub fn parse_options(text: &str) -> Result<u32, String> {
    text.trim().parse().map_err(|_| "bad options".to_string())
}

/// Restricted visibility is not part of the API surface.
pub(crate) fn internal(text: &str) -> Result<u32, String> {
    text.trim().parse().map_err(|_| "bad options".to_string())
}

/// Returning an iterator of Results is not returning a Result.
pub fn stream() -> impl Iterator<Item = Result<u32, String>> {
    std::iter::empty()
}
