use std::collections::HashMap;

fn par_profit(weights: &[f64]) -> f64 {
    weights.par_iter().map(|w| w * 2.0).sum::<f64>()
}

fn map_profit(cells: &HashMap<u32, f64>) -> f64 {
    cells.values().fold(0.0, |acc, v| acc + v)
}
