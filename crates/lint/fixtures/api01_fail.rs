/// Parses a solver option string.
pub fn parse_options(text: &str) -> Result<u32, String> {
    text.trim().parse().map_err(|_| "bad options".to_string())
}
