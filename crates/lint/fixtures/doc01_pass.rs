/// Recomputes the objective from scratch.
pub fn profit() -> f64 {
    0.5
}
