fn budget() -> std::time::Duration {
    std::time::Duration::from_millis(50)
}
