fn head(v: &[u32]) -> u32 {
    // metis-lint: allow(PANIC-01)
    *v.first().unwrap()
}
