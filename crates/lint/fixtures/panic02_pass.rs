fn justified(load: &[f64], edge: usize, slots: usize, t: usize) -> f64 {
    // INDEX: edge < num_edges and t < slots by construction; flat layout.
    load[edge * slots + t]
}

fn asserted(load: &[f64], edge: usize, slots: usize, t: usize) -> f64 {
    debug_assert!(edge * slots + t < load.len());
    load[edge * slots + t]
}

fn clamped(load: &[f64], i: usize) -> f64 {
    load[(i + 1).min(load.len() - 1)]
}

fn plain_and_ranges(load: &[f64], i: usize, m: usize) -> f64 {
    let window = &load[i * m..(i + 1) * m];
    window[0] + load[i]
}
