pub fn profit() -> f64 {
    0.5
}
