fn head(v: &[u32]) -> u32 {
    // metis-lint: allow(PANIC-01): fixture demonstrating a reasoned suppression
    *v.first().unwrap()
}
