use std::collections::BTreeMap;

fn count(xs: &[u32]) -> usize {
    let mut seen: BTreeMap<u32, u32> = BTreeMap::new();
    for &x in xs {
        *seen.entry(x).or_insert(0) += 1;
    }
    seen.len()
}
