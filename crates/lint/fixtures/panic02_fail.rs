fn peak(load: &[f64], edge: usize, slots: usize, t: usize) -> f64 {
    load[edge * slots + t]
}
