fn head(v: &[u32]) -> u32 {
    // metis-lint: allow(PANIC-01): fixture demonstrating a live, earning suppression
    *v.first().unwrap()
}
