fn safe_head(v: &[u32]) -> u32 {
    // metis-lint: allow(PANIC-01): stale — the unwrap below was fixed long ago
    v.first().copied().unwrap_or(0)
}
