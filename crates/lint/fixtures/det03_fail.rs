use std::collections::HashMap;

fn total_load(loads: &HashMap<u32, f64>) -> f64 {
    let mut total = 0.0;
    for v in loads.values() {
        total += v;
    }
    total
}
