fn is_unset(x: f64) -> bool {
    x == 0.0
}
