//! Comparison schedulers from the Metis paper's evaluation (§V-A).
//!
//! * [`mincost`] — fixed-rule scheduling: every request on its cheapest
//!   path, nothing declined.
//! * [`amoeba`] — Amoeba (EuroSys'15): online first-fit admission under
//!   fixed capacities.
//! * [`ecoflow`] — EcoFlow (ACM MM'15), adapted as in the paper: greedy
//!   per-request marginal-profit admission.
//! * [`opt_spm`] / [`opt_rlspm`] — exact MILP optima via branch-and-bound
//!   (the paper used Gurobi 7.5.2).
//!
//! All baselines produce [`metis_core::Schedule`]s so they are evaluated
//! under exactly the same peak-charging cost model as Metis.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod amoeba;
mod ecoflow;
mod mincost;
mod opt;

pub use amoeba::amoeba;
pub use ecoflow::{ecoflow, ecoflow_with, EcoflowCostModel};
pub use mincost::{mincost, mincost_exclusive_evaluation};
pub use opt::{opt_rlspm, opt_spm, opt_spm_with_start, OptOutcome};
