//! Exact optima via branch-and-bound MILP: the paper's `OPT(SPM)` and
//! `OPT(RL-SPM)` references (Fig. 3), solved with Gurobi there and with
//! [`metis_lp::solve_ilp`] here.
//!
//! Both formulations use binary path variables `x_{i,j}` and *integer*
//! charged bandwidth `c_e` (constraint (3) of the paper). Node and time
//! limits make the solvers usable as baselines on larger instances: the
//! outcome then carries the proven bound and an optimality flag.

use metis_core::{Evaluation, Schedule, SpmInstance};
use metis_lp::{
    solve_ilp_with_start, IlpOptions, IlpStatus, Problem, Relation, Sense, SolveError, VarId,
};
use metis_workload::RequestId;

/// Result of an exact (or time-limited) MILP solve.
#[derive(Clone, Debug)]
pub struct OptOutcome {
    /// The incumbent schedule.
    pub schedule: Schedule,
    /// Its evaluation under the standard peak-charging model.
    pub evaluation: Evaluation,
    /// Proven bound on the MILP objective (≥ profit for `OPT(SPM)`,
    /// ≤ cost for `OPT(RL-SPM)` when the run was cut short).
    pub bound: f64,
    /// Whether the solve proved optimality.
    pub optimal: bool,
    /// Branch-and-bound nodes explored.
    pub nodes: usize,
}

/// Encodes a feasible schedule as a MILP warm-start vector: chosen paths
/// as `x = 1`, charged peak units as `c_e`.
fn encode_start(
    instance: &SpmInstance,
    schedule: &Schedule,
    xvars: &[Vec<VarId>],
    cvars: &[VarId],
    num_vars: usize,
) -> Vec<f64> {
    let mut vals = vec![0.0; num_vars];
    for i in 0..instance.num_requests() {
        if let Some(j) = schedule.path_choice(RequestId(i as u32)) {
            vals[xvars[i][j].index()] = 1.0;
        }
    }
    let load = schedule.load(instance);
    for (e, &v) in cvars.iter().enumerate() {
        vals[v.index()] = load.charged_units(metis_netsim::EdgeId(e as u32)) as f64;
    }
    vals
}

fn extract_schedule(
    instance: &SpmInstance,
    xvars: &[Vec<VarId>],
    values: impl Fn(VarId) -> f64,
) -> Schedule {
    let mut schedule = Schedule::decline_all(instance.num_requests());
    for (i, vars) in xvars.iter().enumerate() {
        for (j, &v) in vars.iter().enumerate() {
            if values(v) > 0.5 {
                schedule.set(RequestId(i as u32), Some(j));
                break;
            }
        }
    }
    schedule
}

/// A generous upper bound on any `c_e`: the total concurrent demand.
fn capacity_upper_bound(instance: &SpmInstance) -> f64 {
    instance
        .requests()
        .iter()
        .map(|r| r.rate)
        .sum::<f64>()
        .ceil()
        .max(1.0)
}

/// Builds the shared constraint structure: binary `x`, integer `c`,
/// `Σ_j x_{i,j} (≤ or =) 1`, and per-(edge, slot) load rows.
fn build_problem(
    instance: &SpmInstance,
    sense: Sense,
    demand: Relation,
    x_obj: impl Fn(usize) -> f64,
    c_obj_sign: f64,
) -> (Problem, Vec<Vec<VarId>>, Vec<VarId>) {
    let topo = instance.topology();
    let slots = instance.num_slots();
    let c_ub = capacity_upper_bound(instance);

    let mut p = Problem::new(sense);
    let mut xvars: Vec<Vec<VarId>> = Vec::with_capacity(instance.num_requests());
    for (i, (_, paths)) in instance.iter().enumerate() {
        xvars.push(
            paths
                .iter()
                .map(|_| p.add_int_var(x_obj(i), 0.0, 1.0))
                .collect(),
        );
    }
    let cvars: Vec<VarId> = topo
        .edge_ids()
        .map(|e| p.add_int_var(c_obj_sign * topo.price(e), 0.0, c_ub))
        .collect();

    for vars in &xvars {
        p.add_constraint(vars.iter().map(|&v| (v, 1.0)), demand, 1.0);
    }

    let mut cell_terms: Vec<Vec<(VarId, f64)>> = vec![Vec::new(); topo.num_edges() * slots];
    for (i, (r, paths)) in instance.iter().enumerate() {
        for (j, path) in paths.iter().enumerate() {
            for &e in path.edges() {
                for t in r.start..=r.end {
                    cell_terms[e.index() * slots + t].push((xvars[i][j], r.rate));
                }
            }
        }
    }
    for e in 0..topo.num_edges() {
        for t in 0..slots {
            let terms = &cell_terms[e * slots + t];
            if terms.is_empty() {
                continue;
            }
            let row = terms
                .iter()
                .copied()
                .chain(std::iter::once((cvars[e], -1.0)));
            p.add_constraint(row, Relation::Le, 0.0);
        }
    }
    (p, xvars, cvars)
}

/// `OPT(SPM)`: maximize `Σ v_i x_i − Σ u_e c_e` exactly (subject to the
/// configured node/time limits).
///
/// # Errors
///
/// Propagates MILP failures; with limits set, a [`SolveError::NodeLimit`]
/// means no feasible incumbent was found in budget (should not happen —
/// declining everything is always feasible).
///
/// # Examples
///
/// ```
/// use metis_baselines::opt_spm;
/// use metis_core::SpmInstance;
/// use metis_lp::IlpOptions;
/// use metis_netsim::topologies;
/// use metis_workload::{generate, WorkloadConfig};
///
/// let topo = topologies::sub_b4();
/// let requests = generate(&topo, &WorkloadConfig::paper(8, 1));
/// let instance = SpmInstance::new(topo, requests, 12, 2);
/// let opt = opt_spm(&instance, &IlpOptions::default())?;
/// assert!(opt.evaluation.profit >= 0.0);
/// # Ok::<(), metis_lp::SolveError>(())
/// ```
pub fn opt_spm(instance: &SpmInstance, options: &IlpOptions) -> Result<OptOutcome, SolveError> {
    // Warm start from the better of EcoFlow and declining everything.
    let eco = crate::ecoflow(instance);
    let start = if eco.evaluate(instance).profit > 0.0 {
        eco
    } else {
        Schedule::decline_all(instance.num_requests())
    };
    opt_spm_with_start(instance, options, &start)
}

/// [`opt_spm`] seeded with a caller-provided feasible schedule (e.g. the
/// Metis result), guaranteeing the outcome is at least as profitable.
///
/// # Errors
///
/// Propagates MILP failures.
pub fn opt_spm_with_start(
    instance: &SpmInstance,
    options: &IlpOptions,
    start: &Schedule,
) -> Result<OptOutcome, SolveError> {
    let values: Vec<f64> = instance.requests().iter().map(|r| r.value).collect();
    let (p, xvars, cvars) =
        build_problem(instance, Sense::Maximize, Relation::Le, |i| values[i], -1.0);
    let start = encode_start(instance, start, &xvars, &cvars, p.num_vars());
    let sol = solve_ilp_with_start(&p, options, Some(&start))?;
    let schedule = extract_schedule(instance, &xvars, |v| sol.value(v));
    let evaluation = schedule.evaluate(instance);
    Ok(OptOutcome {
        schedule,
        evaluation,
        bound: sol.bound(),
        optimal: sol.status() == IlpStatus::Optimal,
        nodes: sol.nodes(),
    })
}

/// `OPT(RL-SPM)`: serve **all** requests at exactly minimal bandwidth
/// cost (the "current service mode" reference of Fig. 3).
///
/// # Errors
///
/// Propagates MILP failures.
pub fn opt_rlspm(instance: &SpmInstance, options: &IlpOptions) -> Result<OptOutcome, SolveError> {
    let (p, xvars, cvars) = build_problem(instance, Sense::Minimize, Relation::Eq, |_| 0.0, 1.0);
    // Warm start from MAA's accept-all schedule (always feasible).
    let accepted = vec![true; instance.num_requests()];
    let start = metis_core::maa(instance, &accepted, &metis_core::MaaOptions::default())
        .ok()
        .map(|m| encode_start(instance, &m.schedule, &xvars, &cvars, p.num_vars()));
    let sol = solve_ilp_with_start(&p, options, start.as_deref())?;
    let schedule = extract_schedule(instance, &xvars, |v| sol.value(v));
    let evaluation = schedule.evaluate(instance);
    Ok(OptOutcome {
        schedule,
        evaluation,
        bound: sol.bound(),
        optimal: sol.status() == IlpStatus::Optimal,
        nodes: sol.nodes(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use metis_netsim::topologies;
    use metis_workload::{generate, WorkloadConfig};

    fn instance(k: usize, seed: u64, paths: usize) -> SpmInstance {
        let topo = topologies::sub_b4();
        let reqs = generate(&topo, &WorkloadConfig::paper(k, seed));
        SpmInstance::new(topo, reqs, 12, paths)
    }

    #[test]
    fn opt_spm_profit_nonnegative_and_dominates_heuristics() {
        let inst = instance(10, 1, 2);
        let opt = opt_spm(&inst, &IlpOptions::default()).unwrap();
        assert!(opt.optimal);
        assert!(opt.evaluation.profit >= -1e-9);

        // OPT(SPM) must beat EcoFlow and the accept-all MAA schedule.
        let eco = crate::ecoflow(&inst).evaluate(&inst);
        assert!(opt.evaluation.profit >= eco.profit - 1e-6);
    }

    #[test]
    fn opt_rlspm_accepts_everything() {
        let inst = instance(8, 2, 2);
        let opt = opt_rlspm(&inst, &IlpOptions::default()).unwrap();
        assert!(opt.optimal);
        assert_eq!(opt.evaluation.accepted, 8);
    }

    #[test]
    fn opt_rlspm_cost_lower_bounds_maa() {
        let inst = instance(10, 3, 2);
        let opt = opt_rlspm(&inst, &IlpOptions::default()).unwrap();
        let m = metis_core::maa(
            &inst,
            &vec![true; inst.num_requests()],
            &metis_core::MaaOptions::default(),
        )
        .unwrap();
        assert!(opt.evaluation.cost <= m.evaluation.cost + 1e-6);
    }

    #[test]
    fn opt_spm_at_least_rlspm_profit() {
        // Declining is always allowed, so OPT(SPM) ≥ profit of serving all.
        let inst = instance(9, 4, 2);
        let spm = opt_spm(&inst, &IlpOptions::default()).unwrap();
        let rl = opt_rlspm(&inst, &IlpOptions::default()).unwrap();
        let rl_profit = rl.evaluation.revenue - rl.evaluation.cost;
        assert!(spm.evaluation.profit >= rl_profit - 1e-6);
    }

    #[test]
    fn ilp_objective_matches_evaluation() {
        // The MILP's profit must agree with the schedule-level accounting.
        let inst = instance(7, 5, 2);
        let opt = opt_spm(&inst, &IlpOptions::default()).unwrap();
        assert!(
            (opt.bound - opt.evaluation.profit).abs() < 1e-6,
            "ILP bound {} vs evaluated profit {}",
            opt.bound,
            opt.evaluation.profit
        );
    }

    #[test]
    fn single_lucrative_request_is_served() {
        let topo = topologies::sub_b4();
        let r = metis_workload::Request {
            id: RequestId(0),
            src: metis_netsim::NodeId(0),
            dst: metis_netsim::NodeId(1),
            start: 0,
            end: 5,
            rate: 0.4,
            value: 100.0,
        };
        let inst = SpmInstance::new(topo, vec![r], 12, 2);
        let opt = opt_spm(&inst, &IlpOptions::default()).unwrap();
        assert_eq!(opt.evaluation.accepted, 1);
    }

    #[test]
    fn single_worthless_request_is_declined() {
        let topo = topologies::sub_b4();
        let r = metis_workload::Request {
            id: RequestId(0),
            src: metis_netsim::NodeId(0),
            dst: metis_netsim::NodeId(1),
            start: 0,
            end: 5,
            rate: 0.4,
            value: 1e-9,
        };
        let inst = SpmInstance::new(topo, vec![r], 12, 2);
        let opt = opt_spm(&inst, &IlpOptions::default()).unwrap();
        assert_eq!(opt.evaluation.accepted, 0);
        assert!(opt.evaluation.profit.abs() < 1e-9);
    }
}
