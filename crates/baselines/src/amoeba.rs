//! The *Amoeba* baseline (Zhang et al., EuroSys 2015; §V-A of the paper).
//!
//! Amoeba is an inter-DC flow scheduler that admits deadline-constrained
//! transfers one by one under a fixed amount of bandwidth: a request is
//! accepted iff the residual bandwidth can accommodate it on some path,
//! "without considering future requests" (the property the paper's Fig. 4
//! exploits). The original system is not open source; this implementation
//! reproduces the admission behaviour the paper evaluates against:
//! first-fit over candidate paths in arrival order.

use metis_core::{Schedule, SpmInstance};
use metis_netsim::LoadMatrix;
use metis_workload::RequestId;

/// Online one-by-one admission under fixed per-edge capacities.
///
/// Requests are processed in arrival order (their id order, which the
/// workload generator emits sorted by arrival). Each request takes the
/// first candidate path whose residual capacity fits its rate during its
/// active slots, and is declined if none fits.
///
/// # Panics
///
/// Panics if `capacities.len()` differs from the topology's edge count.
pub fn amoeba(instance: &SpmInstance, capacities: &[f64]) -> Schedule {
    assert_eq!(
        capacities.len(),
        instance.topology().num_edges(),
        "capacity vector length mismatch"
    );
    let mut schedule = Schedule::decline_all(instance.num_requests());
    let mut load = LoadMatrix::new(instance.topology().num_edges(), instance.num_slots());
    for (i, (r, paths)) in instance.iter().enumerate() {
        let fit = paths.iter().position(|path| {
            path.edges()
                .iter()
                .all(|&e| load.fits(e, r.start, r.end, r.rate, capacities[e.index()]))
        });
        if let Some(j) = fit {
            for &e in paths[j].edges() {
                load.add(e, r.start, r.end, r.rate);
            }
            schedule.set(RequestId(i as u32), Some(j));
        }
    }
    schedule
}

#[cfg(test)]
mod tests {
    use super::*;
    use metis_netsim::topologies;
    use metis_workload::{generate, WorkloadConfig};

    fn instance(k: usize, seed: u64) -> SpmInstance {
        let topo = topologies::b4();
        let reqs = generate(&topo, &WorkloadConfig::paper(k, seed));
        SpmInstance::new(topo, reqs, 12, 3)
    }

    #[test]
    fn generous_capacity_accepts_all() {
        let inst = instance(30, 1);
        let s = amoeba(&inst, &vec![100.0; 38]);
        assert_eq!(s.num_accepted(), 30);
    }

    #[test]
    fn zero_capacity_accepts_none() {
        let inst = instance(10, 2);
        let s = amoeba(&inst, &vec![0.0; 38]);
        assert_eq!(s.num_accepted(), 0);
    }

    #[test]
    fn result_respects_capacities() {
        for seed in 0..4 {
            let inst = instance(120, seed);
            let caps = vec![1.0; 38];
            let s = amoeba(&inst, &caps);
            s.check_capacities(&inst, &caps)
                .unwrap_or_else(|v| panic!("seed {seed}: {v}"));
            assert!(s.num_accepted() < 120, "tight capacity must decline some");
        }
    }

    #[test]
    fn admission_is_first_fit_in_arrival_order() {
        // With capacity for exactly one of two identical overlapping
        // requests, the earlier one wins.
        let topo = topologies::sub_b4();
        let mk = |id: u32, value: f64| metis_workload::Request {
            id: RequestId(id),
            src: metis_netsim::NodeId(0),
            dst: metis_netsim::NodeId(1),
            start: 0,
            end: 11,
            rate: 0.8,
            value,
        };
        // The later request is more valuable — Amoeba doesn't care.
        let inst = SpmInstance::new(topo, vec![mk(0, 1.0), mk(1, 100.0)], 12, 1);
        let s = amoeba(&inst, &vec![1.0; inst.topology().num_edges()]);
        assert!(s.is_accepted(RequestId(0)));
        assert!(!s.is_accepted(RequestId(1)));
    }

    #[test]
    fn spills_to_alternative_paths() {
        // Two requests whose first-choice path collides: the second must
        // take an alternative rather than being declined.
        let topo = topologies::sub_b4();
        let mk = |id: u32| metis_workload::Request {
            id: RequestId(id),
            src: metis_netsim::NodeId(0),
            dst: metis_netsim::NodeId(3),
            start: 0,
            end: 11,
            rate: 0.7,
            value: 1.0,
        };
        let inst = SpmInstance::new(topo, vec![mk(0), mk(1)], 12, 3);
        let s = amoeba(&inst, &vec![1.0; inst.topology().num_edges()]);
        assert_eq!(s.num_accepted(), 2);
        assert_ne!(
            s.path_choice(RequestId(0)),
            s.path_choice(RequestId(1)),
            "colliding requests must diverge"
        );
    }
}
