//! The *EcoFlow* baseline (Lin et al., ACM MM 2015; §V-A of the paper).
//!
//! EcoFlow is an economical, deadline-driven inter-DC scheduler. The paper
//! adapts it to the reservation setting: "it handles user requests one by
//! one and accepts the user requests that generate higher service
//! profits" — a greedy marginal-profit admission rule. The original system
//! is not open source; this implementation reproduces that adapted
//! behaviour: each request is placed on the candidate path with the
//! smallest *incremental* peak-charging cost, and accepted only when its
//! value exceeds that increment.
//!
//! Because the first request on an otherwise idle link pays for a full
//! bandwidth unit up front, EcoFlow "declines too many user requests"
//! (§V-B3) — the behaviour Fig. 5 contrasts with Metis.

use metis_core::{Schedule, SpmInstance};
use metis_netsim::{ceil_units, LoadMatrix};
use metis_workload::RequestId;

/// How EcoFlow prices the bandwidth a new request would consume.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum EcoflowCostModel {
    /// Fractional peak increase `Σ u_e·(peak_after − peak_before)` — the
    /// accounting the original EcoFlow system uses when it splits flows
    /// to "avoid the increases of charging volumes". This is the default
    /// and what the Fig. 5 comparison runs.
    #[default]
    Proportional,
    /// Increase in *billed* integer units `Σ u_e·Δ⌈peak⌉` — a stricter
    /// reading where every request must pay for the 10 Gbps units it
    /// forces the provider to lease. Declines far more aggressively.
    UnitCharge,
}

/// Greedy per-request marginal-profit admission with the default
/// (proportional) cost model.
pub fn ecoflow(instance: &SpmInstance) -> Schedule {
    ecoflow_with(instance, EcoflowCostModel::default())
}

/// Greedy per-request marginal-profit admission.
///
/// Processes requests in arrival order. For each, computes the marginal
/// cost of every candidate path given the load admitted so far (per the
/// chosen [`EcoflowCostModel`]), and accepts on the cheapest path iff
/// `value − marginal cost > 0`.
pub fn ecoflow_with(instance: &SpmInstance, cost_model: EcoflowCostModel) -> Schedule {
    let topo = instance.topology();
    let mut schedule = Schedule::decline_all(instance.num_requests());
    let mut load = LoadMatrix::new(topo.num_edges(), instance.num_slots());

    for (i, (r, paths)) in instance.iter().enumerate() {
        let mut best: Option<(usize, f64)> = None; // (path, marginal cost)
        for (j, path) in paths.iter().enumerate() {
            let mut marginal = 0.0;
            for &e in path.edges() {
                let before_peak = load.peak(e);
                // Peak after adding this request on e.
                let mut after_peak = before_peak;
                for t in r.start..=r.end {
                    after_peak = after_peak.max(load.get(e, t) + r.rate);
                }
                marginal += topo.price(e)
                    * match cost_model {
                        EcoflowCostModel::Proportional => after_peak - before_peak,
                        EcoflowCostModel::UnitCharge => {
                            (ceil_units(after_peak) - ceil_units(before_peak)) as f64
                        }
                    };
            }
            match best {
                Some((_, m)) if m <= marginal => {}
                _ => best = Some((j, marginal)),
            }
        }
        if let Some((j, marginal)) = best {
            if r.value > marginal {
                for &e in paths[j].edges() {
                    load.add(e, r.start, r.end, r.rate);
                }
                schedule.set(RequestId(i as u32), Some(j));
            }
        }
    }
    schedule
}

#[cfg(test)]
mod tests {
    use super::*;
    use metis_netsim::topologies;
    use metis_workload::{generate, WorkloadConfig};

    fn instance(k: usize, seed: u64) -> SpmInstance {
        let topo = topologies::b4();
        let reqs = generate(&topo, &WorkloadConfig::paper(k, seed));
        SpmInstance::new(topo, reqs, 12, 3)
    }

    #[test]
    fn unit_charge_profit_is_nonnegative() {
        // Under unit-charge accounting, greedy only accepts increments
        // that cover their billed cost, so total profit cannot go
        // negative. (Proportional accounting can realize small losses at
        // low load because the actual bill rounds peaks up.)
        for seed in 0..4 {
            let inst = instance(60, seed);
            let ev = ecoflow_with(&inst, EcoflowCostModel::UnitCharge).evaluate(&inst);
            assert!(ev.profit >= -1e-9, "seed {seed}: profit {}", ev.profit);
        }
    }

    #[test]
    fn proportional_accepts_more_than_unit_charge() {
        let inst = instance(150, 5);
        let prop = ecoflow_with(&inst, EcoflowCostModel::Proportional);
        let unit = ecoflow_with(&inst, EcoflowCostModel::UnitCharge);
        assert!(prop.num_accepted() > unit.num_accepted());
    }

    #[test]
    fn declines_low_value_requests() {
        let inst = instance(100, 1);
        let s = ecoflow(&inst);
        assert!(s.num_accepted() < 100, "some low bids must be declined");
        assert!(s.num_accepted() > 0, "high bids must be accepted");
    }

    #[test]
    fn accepts_obviously_profitable_request() {
        let topo = topologies::sub_b4();
        let r = metis_workload::Request {
            id: RequestId(0),
            src: metis_netsim::NodeId(0),
            dst: metis_netsim::NodeId(1),
            start: 0,
            end: 11,
            rate: 0.5,
            value: 1e6,
        };
        let inst = SpmInstance::new(topo, vec![r], 12, 3);
        let s = ecoflow(&inst);
        assert!(s.is_accepted(RequestId(0)));
    }

    #[test]
    fn declines_unprofitable_request() {
        let topo = topologies::sub_b4();
        let r = metis_workload::Request {
            id: RequestId(0),
            src: metis_netsim::NodeId(0),
            dst: metis_netsim::NodeId(1),
            start: 0,
            end: 11,
            rate: 0.5,
            value: 1e-6, // far below one unit of any link price
        };
        let inst = SpmInstance::new(topo, vec![r], 12, 3);
        let s = ecoflow(&inst);
        assert!(!s.is_accepted(RequestId(0)));
    }

    #[test]
    fn exploits_already_paid_bandwidth() {
        // A big profitable request pays for a unit; a small follower on
        // the same route rides for free and must be accepted even with a
        // tiny bid.
        let topo = topologies::sub_b4();
        let mk = |id: u32, rate: f64, value: f64| metis_workload::Request {
            id: RequestId(id),
            src: metis_netsim::NodeId(0),
            dst: metis_netsim::NodeId(1),
            start: 0,
            end: 11,
            rate,
            value,
        };
        let inst = SpmInstance::new(topo, vec![mk(0, 0.5, 1e5), mk(1, 0.3, 1e-3)], 12, 1);
        let s = ecoflow_with(&inst, EcoflowCostModel::UnitCharge);
        assert!(s.is_accepted(RequestId(0)));
        assert!(
            s.is_accepted(RequestId(1)),
            "zero marginal cost ⇒ any positive bid is profitable"
        );
    }

    #[test]
    fn deterministic() {
        let inst = instance(40, 2);
        assert_eq!(ecoflow(&inst), ecoflow(&inst));
    }
}
