//! The *MinCost* baseline (§V-A of the paper).
//!
//! "Using fixed rules in scheduling, it always selects the path with the
//! least bandwidth price (i.e., min-cost path) to deliver traffic data
//! between data centers. In our evaluation, it reserves exclusive
//! bandwidth for users on the min-cost paths." MinCost accepts every
//! request and never coordinates across requests, so its peak-based
//! charges are typically higher than MAA's.

use metis_core::{Evaluation, Schedule, SpmInstance};
use metis_netsim::LoadMatrix;
use metis_workload::RequestId;

/// Routes every request on its cheapest candidate path.
///
/// # Panics
///
/// Panics if any request has no candidate path (an [`SpmInstance`]
/// invariant rules this out).
pub fn mincost(instance: &SpmInstance) -> Schedule {
    let mut schedule = Schedule::decline_all(instance.num_requests());
    let topo = instance.topology();
    for (i, (_, paths)) in instance.iter().enumerate() {
        let best = paths
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| a.price(topo).total_cmp(&b.price(topo)))
            .map(|(j, _)| j)
            .expect("non-empty path set");
        schedule.set(RequestId(i as u32), Some(best));
    }
    schedule
}

/// Evaluates the MinCost schedule under **whole-cycle exclusive
/// reservations**: each user's bandwidth is dedicated for the entire
/// billing cycle, so charges are `⌈Σ_i r_i⌉` per link rather than the
/// time-multiplexed peak.
///
/// The paper says MinCost "reserves exclusive bandwidth for users on the
/// min-cost paths" without pinning down whether the reservation spans the
/// request window or the whole cycle; [`mincost`] evaluated with
/// [`Schedule::evaluate`] gives the windowed (cheaper) reading, this
/// function the whole-cycle (costlier) one. The two bracket the paper's
/// reported gap to MAA.
pub fn mincost_exclusive_evaluation(instance: &SpmInstance) -> Evaluation {
    let schedule = mincost(instance);
    let topo = instance.topology();
    let slots = instance.num_slots();
    let last = slots - 1;
    let mut load = LoadMatrix::new(topo.num_edges(), slots);
    for i in 0..instance.num_requests() {
        let id = RequestId(i as u32);
        let j = schedule
            .path_choice(id)
            .expect("mincost accepts everything");
        let r = instance.request(id);
        for &e in instance.paths(id)[j].edges() {
            load.add(e, 0, last, r.rate);
        }
    }
    let revenue = instance.total_value();
    let charged = load.charged_capacities();
    let cost = load.total_cost(topo);
    let utilization = load.utilization(&charged);
    Evaluation {
        revenue,
        cost,
        profit: revenue - cost,
        accepted: instance.num_requests(),
        charged,
        utilization,
        load,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use metis_netsim::topologies;
    use metis_workload::{generate, WorkloadConfig};

    fn instance(k: usize, seed: u64) -> SpmInstance {
        let topo = topologies::b4();
        let reqs = generate(&topo, &WorkloadConfig::paper(k, seed));
        SpmInstance::new(topo, reqs, 12, 3)
    }

    #[test]
    fn accepts_everything() {
        let inst = instance(30, 1);
        let s = mincost(&inst);
        assert_eq!(s.num_accepted(), 30);
        let ev = s.evaluate(&inst);
        assert!((ev.revenue - inst.total_value()).abs() < 1e-9);
    }

    #[test]
    fn uses_cheapest_path_for_each_request() {
        let inst = instance(25, 2);
        let s = mincost(&inst);
        let topo = inst.topology();
        for i in 0..25 {
            let id = RequestId(i);
            let j = s.path_choice(id).unwrap();
            let chosen = inst.paths(id)[j].price(topo);
            for p in inst.paths(id) {
                assert!(chosen <= p.price(topo) + 1e-12);
            }
        }
    }

    #[test]
    fn deterministic() {
        let inst = instance(20, 3);
        assert_eq!(mincost(&inst), mincost(&inst));
    }

    #[test]
    fn exclusive_costs_at_least_windowed() {
        let inst = instance(60, 4);
        let windowed = mincost(&inst).evaluate(&inst);
        let exclusive = mincost_exclusive_evaluation(&inst);
        assert!(exclusive.cost >= windowed.cost - 1e-9);
        assert_eq!(exclusive.accepted, 60);
        assert!((exclusive.revenue - windowed.revenue).abs() < 1e-9);
    }
}
