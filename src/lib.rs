//! **metis-suite** — a complete reproduction of *"Towards Maximal Service
//! Profit in Geo-Distributed Clouds"* (ICDCS 2019) in pure Rust.
//!
//! This facade re-exports the workspace crates:
//!
//! * [`lp`] — sparse bounded-variable simplex + branch-and-bound MILP;
//! * [`netsim`] — the inter-DC WAN model (B4 / SUB-B4 topologies, paths,
//!   peak-based billing);
//! * [`workload`] — the synthetic bandwidth-reservation workload of §V-A;
//! * [`core`] — the Metis framework: MAA, TAA, BW limiter, SP updater;
//! * [`baselines`] — MinCost, Amoeba, EcoFlow, and exact MILP optima;
//! * [`telemetry`] — spans, metrics, and snapshot export (see
//!   DESIGN.md §7 "Observability").
//!
//! # Quick start
//!
//! ```
//! use metis_suite::core::{metis, MetisConfig, SpmInstance};
//! use metis_suite::netsim::topologies;
//! use metis_suite::workload::{generate, WorkloadConfig};
//!
//! let topo = topologies::b4();
//! let requests = generate(&topo, &WorkloadConfig::paper(60, 1));
//! let instance = SpmInstance::new(topo, requests, 12, 3);
//! let result = metis(&instance, &MetisConfig::with_theta(4))?;
//! assert!(result.evaluation.profit >= 0.0);
//! # Ok::<(), metis_suite::core::MetisError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use metis_baselines as baselines;
pub use metis_core as core;
pub use metis_lp as lp;
pub use metis_netsim as netsim;
pub use metis_telemetry as telemetry;
pub use metis_workload as workload;
